"""Shuttles and jets: the active gene-coded packets of the WLI model.

"Active packets are called *shuttles* and carry code and data for the
upgrade/degrade and re-configuration of ships.  In addition, shuttles
can carry genetic information about the ships' architecture and their
communication patterns."

"a special class of shuttles, called *jets*, are allowed to replicate
themselves and to create/remove/modify other capsules and resources in
the network."

A shuttle's cargo is a list of *directives* interpreted by the receiving
ship (install code, load bitstream, acquire/activate roles, deploy
knowledge quanta, transcribe a genome, ...).  Its DCP half is
:meth:`Shuttle.morph_for`: "a shuttle approaching a ship can
re-configure itself becoming a *morphing packet* to provide the desired
interface and match a ship's requirements ... based on the destination
address and on the class of the ship included in this address."
"""

from __future__ import annotations

from typing import Any, Dict, Hashable, Iterable, List, Optional

from ..obs import TRACE_META_KEY
from ..perf import pool as _pool
from ..perf.switches import switches as _opt
from ..substrates.hardware import Bitstream
from ..substrates.nodeos import CodeModule
from ..substrates.phys import Datagram
from ..substrates.phys.packet import _packet_ids, copy_meta
from .genetics import Genome
from .knowledge import KnowledgeQuantum
from .ployon import Manifestation, Ployon, _ployon_ids

#: Directive operation names (the shuttle instruction set).
OP_INSTALL_CODE = "install-code"
OP_INSTALL_DRIVER = "install-driver"
OP_LOAD_BITSTREAM = "load-bitstream"
OP_ACQUIRE_ROLE = "acquire-role"
OP_ACTIVATE_ROLE = "activate-role"
OP_RELEASE_ROLE = "release-role"
OP_SET_NEXT_STEP = "set-next-step"
OP_DEPLOY_QUANTUM = "deploy-quantum"
OP_TRANSCRIBE_GENOME = "transcribe-genome"
OP_REQUEST_STATE = "request-state"

ALL_OPS = (OP_INSTALL_CODE, OP_INSTALL_DRIVER, OP_LOAD_BITSTREAM,
           OP_ACQUIRE_ROLE, OP_ACTIVATE_ROLE, OP_RELEASE_ROLE,
           OP_SET_NEXT_STEP, OP_DEPLOY_QUANTUM, OP_TRANSCRIBE_GENOME,
           OP_REQUEST_STATE)

#: Key under which a shuttle's construction-time manifest rides in
#: ``meta`` (SRP.1 self-description; verified at admission).
MANIFEST_META_KEY = "manifest"


def shuttle_manifest(directives: Iterable["Directive"]) -> tuple:
    """The self-description a shuttle declares at construction: the
    ordered op sequence of its cargo.  The admission verifier recomputes
    this at the dock — en-route tampering (a privileged directive spliced
    into a signed shuttle) shows up as a manifest mismatch."""
    return tuple(d.op for d in directives)


class Directive:
    """One reconfiguration instruction carried by a shuttle."""

    __slots__ = ("op", "args")

    def __init__(self, op: str, **args: Any):
        if op not in ALL_OPS:
            raise ValueError(f"unknown shuttle op {op!r}")
        self.op = op
        self.args = args

    @property
    def size_bytes(self) -> int:
        size = 16
        code = self.args.get("module")
        if isinstance(code, CodeModule):
            size += code.size_bytes
        bitstream = self.args.get("bitstream")
        if isinstance(bitstream, Bitstream):
            size += bitstream.size_bytes
        quantum = self.args.get("quantum")
        if isinstance(quantum, KnowledgeQuantum):
            size += quantum.size_bytes
        genome = self.args.get("genome")
        if isinstance(genome, Genome):
            size += genome.size_bytes
        return size

    def __repr__(self) -> str:
        return f"<Directive {self.op} {sorted(self.args)}>"


class Shuttle(Datagram, Ployon):
    """An active gene-coded packet (the packet manifestation of a ployon).

    Parameters
    ----------
    interface:
        The encodings/protocols this shuttle speaks at the dock (DCP
        matching surface).  A morphing shuttle rewrites this to match
        the target ship class.
    """

    manifestation = Manifestation.SHUTTLE

    __slots__ = ("directives", "credential", "interface", "target_class",
                 "morphs", "ployon_id", "data")

    BASE_SIZE = 96

    def __init__(self, src: Hashable, dst: Hashable,
                 directives: Optional[Iterable[Directive]] = None,
                 credential: Any = None,
                 interface: Iterable[str] = ("wli/1",),
                 target_class: Optional[str] = None,
                 ttl: int = 64, data: Any = None, **kw):
        directives = list(directives or [])
        size = self.BASE_SIZE + sum(d.size_bytes for d in directives)
        Datagram.__init__(self, src, dst, size_bytes=size, ttl=ttl, **kw)
        Ployon.__init__(self)
        self.directives: List[Directive] = directives
        self.credential = credential
        self.interface = tuple(interface)
        #: Ship class parsed from the destination address (the paper
        #: encodes it in the address; we carry it explicitly).
        self.target_class = target_class
        self.morphs = 0
        self.data = data
        # SRP.1: the shuttle describes its own cargo up front.  clone()
        # and spawn_copy() overwrite meta with the original's copy, which
        # is consistent because they carry the same directive list.
        self.meta[MANIFEST_META_KEY] = shuttle_manifest(directives)

    # -- ployon structure (DCP vocabulary) -----------------------------------
    def structure(self) -> Dict[str, Any]:
        functions = []
        hardware = []
        knowledge = []
        for d in self.directives:
            if d.op in (OP_INSTALL_CODE, OP_ACQUIRE_ROLE):
                mod = d.args.get("module")
                functions.append(mod.code_id if mod is not None
                                 else d.args.get("role_id"))
            elif d.op == OP_LOAD_BITSTREAM:
                hardware.append(d.args["bitstream"].function_id)
            elif d.op == OP_DEPLOY_QUANTUM:
                kq = d.args["quantum"]
                functions.append(kq.function_id)
                knowledge.extend(sorted({s["fact_class"]
                                         for s in kq.fact_snapshots}))
            elif d.op == OP_TRANSCRIBE_GENOME:
                genome = d.args["genome"]
                functions.extend(genome.modal_roles)
                hardware.extend(genome.hardware_functions)
        return {
            "functions": tuple(sorted({f for f in functions if f})),
            "hardware": tuple(sorted(set(hardware))),
            "knowledge": tuple(sorted(set(knowledge))),
            "interface": tuple(sorted(self.interface)),
        }

    # -- causal tracing -----------------------------------------------------
    @property
    def trace_context(self) -> Optional[tuple]:
        """The ``(trace_id, span_id)`` pair this shuttle's journey rides
        under, or None when untraced.  The context lives in ``meta`` so
        it survives :meth:`clone`, morphing and jet replication."""
        return self.meta.get(TRACE_META_KEY)

    @trace_context.setter
    def trace_context(self, ctx: Optional[tuple]) -> None:
        if ctx is None:
            self.meta.pop(TRACE_META_KEY, None)
        else:
            self.meta[TRACE_META_KEY] = ctx

    # -- morphing (DCP) --------------------------------------------------------
    def morph_for(self, ship_requirements: Dict[str, Any]) -> bool:
        """Re-configure the shuttle to match a ship's published interface.

        ``ship_requirements`` is the dict a ship publishes (its required
        ``interface`` tuple and ``ship_class``).  Returns True if the
        shuttle changed ("becoming a morphing packet").
        """
        wanted = tuple(sorted(ship_requirements.get("interface", ())))
        have = tuple(sorted(self.interface))
        changed = False
        if wanted and wanted != have:
            self.interface = wanted
            changed = True
        ship_class = ship_requirements.get("ship_class")
        if ship_class is not None and self.target_class != ship_class:
            self.target_class = ship_class
            changed = True
        if changed:
            self.morphs += 1
            self.meta["morphed"] = True
        return changed

    def compatible_with(self, ship_requirements: Dict[str, Any]) -> bool:
        """True iff the shuttle speaks the ship's *whole* dock interface.

        The class token matters: "this operation can be based on ...
        the class of the ship included in this address" — a shuttle
        built for a server-class dock must morph before an agent-class
        ship accepts it.
        """
        wanted = set(ship_requirements.get("interface", ()))
        return wanted <= set(self.interface)

    # -- cargo helpers -----------------------------------------------------
    def carried_code(self) -> List[CodeModule]:
        return [d.args["module"] for d in self.directives
                if d.op in (OP_INSTALL_CODE, OP_INSTALL_DRIVER,
                            OP_ACQUIRE_ROLE) and "module" in d.args]

    def carried_quanta(self) -> List[KnowledgeQuantum]:
        return [d.args["quantum"] for d in self.directives
                if d.op == OP_DEPLOY_QUANTUM]

    def carried_genomes(self) -> List[Genome]:
        return [d.args["genome"] for d in self.directives
                if d.op == OP_TRANSCRIBE_GENOME]

    def freeze_cargo(self) -> "Shuttle":
        """Freeze the directive list into a shared immutable tuple.

        Copy-on-write enabler: once frozen, :meth:`clone` shares the
        cargo tuple with every twin instead of rebuilding a list per
        clone — the ARQ transport freezes its retransmission templates
        so a storm of retries carries one shared cargo.  Directives are
        only ever replaced wholesale after construction (the admission
        tamper tests mutate *unfrozen* shuttles), so sharing is safe.
        Returns ``self`` for chaining.
        """
        if not isinstance(self.directives, tuple):
            self.directives = tuple(self.directives)
        return self

    def clone(self) -> "Shuttle":
        if _opt.cow_clone:
            return self._fast_clone()
        twin = Shuttle(self.src, self.dst,
                       directives=list(self.directives),
                       credential=self.credential,
                       interface=self.interface,
                       target_class=self.target_class,
                       ttl=self.ttl, data=self.data, flow_id=self.flow_id)
        twin.created_at = self.created_at
        twin.hops = self.hops
        twin.meta = copy_meta(self.meta)
        return twin

    def _fast_clone(self) -> "Shuttle":
        """Slot-for-slot clone skipping the constructor.

        Draws exactly one packet id and one ployon id — the same counter
        consumption as the eager path — so downstream flow ids and run
        digests are byte-identical whichever path produced the twin.
        Frozen cargo is shared (CoW); unfrozen cargo is shallow-copied
        to preserve the eager path's isolation.  Every eager-path quirk
        is replicated: ``payload`` is dropped, ``morphs`` resets to 0,
        size/manifest are carried over instead of recomputed.
        """
        if _opt.object_pool:
            twin = _pool.shuttle_pool.grab()
            if twin is None:
                twin = Shuttle.__new__(Shuttle)
        else:
            twin = Shuttle.__new__(Shuttle)
        twin.packet_id = next(_packet_ids)
        twin.src = self.src
        twin.dst = self.dst
        twin.size_bytes = self.size_bytes
        twin.ttl = self.ttl
        twin.payload = None
        twin.created_at = self.created_at
        twin.hops = self.hops
        twin.flow_id = self.flow_id
        twin.meta = copy_meta(self.meta)
        twin.ployon_id = next(_ployon_ids)
        directives = self.directives
        twin.directives = (directives if isinstance(directives, tuple)
                           else list(directives))
        twin.credential = self.credential
        twin.interface = self.interface
        twin.target_class = self.target_class
        twin.morphs = 0
        twin.data = self.data
        return twin

    def _scrub(self) -> "Shuttle":
        """Drop every object reference before free-list parking
        (``perf.switches.object_pool``); the next :meth:`_fast_clone`
        acquire reassigns every slot."""
        self.src = None
        self.dst = None
        self.payload = None
        self.meta = None
        self.flow_id = None
        self.directives = ()
        self.credential = None
        self.interface = None
        self.target_class = None
        self.data = None
        return self

    def __repr__(self) -> str:
        ops = [d.op for d in self.directives]
        return (f"<Shuttle #{self.packet_id} {self.src}->{self.dst} "
                f"ops={ops}>")


class Jet(Shuttle):
    """A self-replicating shuttle (WLI's privileged capsule class).

    A jet carries a payload of directives plus a replication policy:
    at every ship it visits it applies its directives, then spawns
    copies toward unvisited neighbours while its budget lasts.  Ships
    only honour jets whose credential holds the ``spawn`` privilege —
    replication happens "under the supervision of the NodeOS".
    """

    __slots__ = ("replicate_budget", "visited", "max_fanout")

    def __init__(self, src: Hashable, dst: Hashable,
                 directives: Optional[Iterable[Directive]] = None,
                 replicate_budget: int = 16, max_fanout: int = 3, **kw):
        super().__init__(src, dst, directives=directives, **kw)
        if replicate_budget < 0:
            raise ValueError("negative replicate budget")
        self.replicate_budget = int(replicate_budget)
        self.max_fanout = int(max_fanout)
        self.visited: set = {src}
        self.size_bytes += 32  # replication header

    def spawn_copy(self, new_dst: Hashable, budget: int) -> "Jet":
        if _opt.cow_clone:
            return self._fast_spawn_copy(new_dst, budget)
        copy = Jet(self.src, new_dst, directives=list(self.directives),
                   replicate_budget=budget, max_fanout=self.max_fanout,
                   credential=self.credential, interface=self.interface,
                   target_class=self.target_class, ttl=self.ttl,
                   flow_id=self.flow_id)
        copy.visited = set(self.visited)
        copy.meta = copy_meta(self.meta)
        copy.meta["jet_copy"] = True
        return copy

    def _fast_spawn_copy(self, new_dst: Hashable, budget: int) -> "Jet":
        """Slot-for-slot replica skipping the constructor (CoW cargo).

        Mirrors the eager path exactly, including its quirks: the copy
        drops ``payload``/``data``, starts at ``created_at=0.0`` and
        ``hops=0``, resets ``morphs``, and consumes one packet id plus
        one ployon id — so a jet flood's run digest is identical with
        the optimization on or off.
        """
        if budget < 0:
            raise ValueError("negative replicate budget")
        if _opt.object_pool:
            copy = _pool.jet_pool.grab()
            if copy is None:
                copy = Jet.__new__(Jet)
        else:
            copy = Jet.__new__(Jet)
        copy.packet_id = next(_packet_ids)
        copy.src = self.src
        copy.dst = new_dst
        copy.size_bytes = self.size_bytes
        copy.ttl = self.ttl
        copy.payload = None
        copy.created_at = 0.0
        copy.hops = 0
        copy.flow_id = self.flow_id
        copy.meta = copy_meta(self.meta)
        copy.meta["jet_copy"] = True
        copy.ployon_id = next(_ployon_ids)
        directives = self.directives
        copy.directives = (directives if isinstance(directives, tuple)
                           else list(directives))
        copy.credential = self.credential
        copy.interface = self.interface
        copy.target_class = self.target_class
        copy.morphs = 0
        copy.data = None
        copy.replicate_budget = int(budget)
        copy.max_fanout = self.max_fanout
        copy.visited = set(self.visited)
        return copy

    def clone(self) -> "Jet":
        twin = self.spawn_copy(self.dst, self.replicate_budget)
        twin.created_at = self.created_at
        twin.hops = self.hops
        return twin

    def _scrub(self) -> "Jet":
        super()._scrub()
        self.visited = None
        return self

    def __repr__(self) -> str:
        return (f"<Jet #{self.packet_id} {self.src}->{self.dst} "
                f"budget={self.replicate_budget}>")


# Exact-type release dispatch for the fabric's delivery terminus (the
# physical substrate must not import core classes directly).
_pool.register(Shuttle, _pool.shuttle_pool)
_pool.register(Jet, _pool.jet_pool)
