"""The Dualistic Congruence Principle (DCP) machinery.

"The Dualistic Congruence Principle states that a ship's architecture
reflects the shuttle's structure at some previous step and vice versa."

This module provides the *measure* side of the principle: a congruence
score between two ployon structures, and a per-ship tracker that
verifies, over time, that processing shuttles actually pulls the ship's
architecture toward the structures it processed (and that emitted
shuttles reflect the ship).  The *mechanism* side lives in the ship's
shuttle interpreter (directives change architecture) and in
:meth:`~repro.core.shuttle.Shuttle.morph_for` (shuttles adapt to ships).
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Dict, List, Tuple

#: Weights of the structural components in the congruence score.
COMPONENT_WEIGHTS = {
    "functions": 0.45,
    "hardware": 0.2,
    "knowledge": 0.2,
    "interface": 0.15,
}


def _jaccard(a, b) -> float:
    sa, sb = set(a or ()), set(b or ())
    if not sa and not sb:
        return 1.0
    union = sa | sb
    return len(sa & sb) / len(union)


def congruence(structure_a: Dict[str, Any],
               structure_b: Dict[str, Any]) -> float:
    """Weighted structural similarity of two ployons, in [0, 1].

    1.0 means the ship's architecture and the shuttle's structure are
    images of each other in the shared ployon vocabulary.
    """
    score = 0.0
    for key, weight in COMPONENT_WEIGHTS.items():
        score += weight * _jaccard(structure_a.get(key),
                                   structure_b.get(key))
    return score


class CongruenceTracker:
    """Observes a ship's DCP behaviour over a sliding window.

    ``record_processed`` is called with a shuttle's structure and the
    ship's structure *after* processing it; ``record_emitted`` with a
    shuttle the ship created.  ``reflection_gain`` answers the DCP
    question directly: did processing the shuttle move the ship's
    structure toward the shuttle's?
    """

    def __init__(self, window: int = 64):
        if window < 1:
            raise ValueError(f"window must be >= 1, got {window}")
        self.window = window
        self._processed: Deque[Tuple[float, float, float]] = deque(
            maxlen=window)  # (time, congruence_before, congruence_after)
        self._emitted: Deque[Tuple[float, float]] = deque(maxlen=window)
        self.shuttles_processed = 0
        self.shuttles_emitted = 0

    def record_processed(self, now: float,
                         shuttle_structure: Dict[str, Any],
                         ship_before: Dict[str, Any],
                         ship_after: Dict[str, Any]) -> float:
        before = congruence(ship_before, shuttle_structure)
        after = congruence(ship_after, shuttle_structure)
        self._processed.append((now, before, after))
        self.shuttles_processed += 1
        return after

    def record_emitted(self, now: float,
                       shuttle_structure: Dict[str, Any],
                       ship_structure: Dict[str, Any]) -> float:
        score = congruence(ship_structure, shuttle_structure)
        self._emitted.append((now, score))
        self.shuttles_emitted += 1
        return score

    # -- DCP verdicts ------------------------------------------------------
    def reflection_gain(self) -> float:
        """Mean (after - before) congruence across processed shuttles.

        Positive means the ship's architecture moves toward the shuttle
        structures it processes — the forward direction of the DCP.
        """
        if not self._processed:
            return 0.0
        return sum(after - before
                   for _, before, after in self._processed) / len(self._processed)

    def emission_congruence(self) -> float:
        """Mean congruence of emitted shuttles with the emitting ship —
        the reverse direction of the DCP ("and vice versa")."""
        if not self._emitted:
            return 0.0
        return sum(score for _, score in self._emitted) / len(self._emitted)

    def history(self) -> List[Tuple[float, float, float]]:
        return list(self._processed)

    def __repr__(self) -> str:
        return (f"<CongruenceTracker processed={self.shuttles_processed} "
                f"gain={self.reflection_gain():+.3f} "
                f"emit={self.emission_congruence():.3f}>")
