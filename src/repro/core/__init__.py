"""WLI core: the Viator paper's primary contribution, executable.

Ships, shuttles, jets, netbots (the ployon manifestations), knowledge
quanta (PMP), genetic transcoding, network resonance, the four WLI
principles, the WN generation ladder, and the WanderingNetwork
orchestrator.
"""

from .congruence import COMPONENT_WEIGHTS, CongruenceTracker, congruence
from .feedback import Dimension, FeedbackBus, FeedbackController
from .generations import Capability, Generation, capabilities, classify, supports
from .genetics import Genome, TranscriptionReport, encode_ship, transcribe
from .knowledge import (DEFAULT_DECAY_RATE, DEFAULT_THRESHOLD, Fact,
                        KnowledgeBase, KnowledgeQuantum, NetFunction)
from .metamorphosis import PulseReport, WanderEvent, WanderingEngine
from .netbot import Netbot, NetbotState
from .ployon import Manifestation, Ployon
from .resonance import ResonanceField
from .selfref import (CommunityDirectory, ReputationSystem, ShipAggregate,
                      clusters_by_function)
from .ship import Ship, ShipError
from .shuttle import (ALL_OPS, OP_ACQUIRE_ROLE, OP_ACTIVATE_ROLE,
                      OP_DEPLOY_QUANTUM, OP_INSTALL_CODE, OP_INSTALL_DRIVER,
                      OP_LOAD_BITSTREAM, OP_RELEASE_ROLE, OP_REQUEST_STATE,
                      OP_SET_NEXT_STEP, OP_TRANSCRIBE_GENOME, Directive,
                      Jet, Shuttle)
from .wandering_network import WanderingNetwork, WanderingNetworkConfig

__all__ = [
    "COMPONENT_WEIGHTS", "CongruenceTracker", "congruence", "Dimension",
    "FeedbackBus", "FeedbackController", "Capability", "Generation",
    "capabilities", "classify", "supports", "Genome",
    "TranscriptionReport", "encode_ship", "transcribe",
    "DEFAULT_DECAY_RATE", "DEFAULT_THRESHOLD", "Fact", "KnowledgeBase",
    "KnowledgeQuantum", "NetFunction", "PulseReport", "WanderEvent",
    "WanderingEngine", "Netbot", "NetbotState", "Manifestation", "Ployon",
    "ResonanceField", "CommunityDirectory", "ReputationSystem",
    "ShipAggregate", "clusters_by_function", "Ship", "ShipError",
    "ALL_OPS", "Directive", "Jet", "Shuttle", "WanderingNetwork",
    "WanderingNetworkConfig", "OP_ACQUIRE_ROLE", "OP_ACTIVATE_ROLE",
    "OP_DEPLOY_QUANTUM", "OP_INSTALL_CODE", "OP_INSTALL_DRIVER",
    "OP_LOAD_BITSTREAM", "OP_RELEASE_ROLE", "OP_REQUEST_STATE",
    "OP_SET_NEXT_STEP", "OP_TRANSCRIBE_GENOME",
]
