"""Genetic transcoding (PMP.5 and the "Node Genesis" contribution).

"Network elements can encode and decode their state in knowledge quanta.
This mechanism is called *genetic transcoding*." and contribution 3,
*Node Genesis* ("N"-geneering): "encoding and embedding the structural
information about a mobile node, the ship, and its environment into the
executable part of the active packets, the shuttles."

A :class:`Genome` is the serialized architecture of a ship: its modal
and auxiliary functions, EE layout, hardware configuration, and a digest
of its communication patterns.  Shuttles carry genomes; a receiving ship
can *transcribe* one to clone or repair structure (self-healing uses
this to reconstruct a dead ship's functionality elsewhere).
"""

from __future__ import annotations

import itertools
import json
from typing import Any, Dict, Hashable, List, Optional

# fork-inherited id sequence: every shard replays the same
# construction order, so per-process copies advance identically
# (see shard/recovery.py)  # via: ignore[VIA013]
_genome_ids = itertools.count(1)


class Genome:
    """Serialized structural information about a ship.

    The payload is a plain JSON-able dict so its wire size is honest and
    the structure survives ship-to-ship transport unchanged.
    """

    __slots__ = ("genome_id", "ship_id", "ship_class", "encoded_at",
                 "payload")

    def __init__(self, ship_id: Hashable, ship_class: str,
                 payload: Dict[str, Any], encoded_at: float = 0.0):
        self.genome_id = next(_genome_ids)
        self.ship_id = ship_id
        self.ship_class = ship_class
        self.encoded_at = float(encoded_at)
        self.payload = payload

    @property
    def size_bytes(self) -> int:
        return 32 + len(json.dumps(self.payload, sort_keys=True,
                                   default=str))

    @property
    def modal_roles(self) -> List[str]:
        return list(self.payload.get("modal_roles", []))

    @property
    def auxiliary_roles(self) -> List[str]:
        return list(self.payload.get("auxiliary_roles", []))

    @property
    def active_role(self) -> Optional[str]:
        return self.payload.get("active_role")

    @property
    def hardware_functions(self) -> List[str]:
        return list(self.payload.get("hardware", {}).get("functions", []))

    @property
    def communication_pattern(self) -> Dict[str, int]:
        return dict(self.payload.get("comm_pattern", {}))

    def __repr__(self) -> str:
        return (f"<Genome #{self.genome_id} of {self.ship_id} "
                f"({self.ship_class}) {self.size_bytes}B>")


def encode_ship(ship, now: float) -> Genome:
    """Encode a ship's architecture and environment into a genome.

    Works against the Ship interface (duck-typed so tests can encode
    minimal stand-ins): ``nodeos``, ``fabric_hw``, ``roles``,
    ``active_role_id``, ``ship_class``, ``comm_pattern()``,
    ``knowledge`` (optional).
    """
    nodeos_desc = ship.nodeos.describe()
    payload: Dict[str, Any] = {
        "modal_roles": sorted(r for r, meta in ship.roles.items()
                              if meta["modal"]),
        "auxiliary_roles": sorted(r for r, meta in ship.roles.items()
                                  if not meta["modal"]),
        "active_role": ship.active_role_id,
        "ees": nodeos_desc["ees"],
        "drivers": nodeos_desc["drivers"],
        "hardware": ship.fabric_hw.describe(),
        "comm_pattern": ship.comm_pattern(),
    }
    kb = getattr(ship, "knowledge", None)
    if kb is not None:
        payload["fact_classes"] = {
            cls: round(kb.class_weight(cls, now), 4)
            for cls in sorted(kb.classes())}
    return Genome(ship.ship_id, ship.ship_class, payload, encoded_at=now)


class TranscriptionReport:
    """What changed when a genome was transcribed into a ship."""

    def __init__(self):
        self.roles_acquired: List[str] = []
        self.roles_already_present: List[str] = []
        self.roles_unavailable: List[str] = []
        self.activated: Optional[str] = None

    @property
    def any_change(self) -> bool:
        return bool(self.roles_acquired or self.activated)

    def __repr__(self) -> str:
        return (f"<Transcription acquired={self.roles_acquired} "
                f"activated={self.activated}>")


def transcribe(genome: Genome, ship, catalog,
               include_auxiliary: bool = True,
               activate: bool = True) -> TranscriptionReport:
    """Apply a genome to a ship: acquire the encoded roles.

    ``catalog`` maps role ids to role factories (the network's function
    catalog); roles absent from it cannot be reconstructed and are
    reported in ``roles_unavailable``.
    """
    report = TranscriptionReport()
    wanted = list(genome.modal_roles)
    if include_auxiliary:
        wanted += genome.auxiliary_roles
    for role_id in wanted:
        if ship.has_role(role_id):
            report.roles_already_present.append(role_id)
            continue
        factory = catalog.get(role_id)
        if factory is None:
            report.roles_unavailable.append(role_id)
            continue
        ship.acquire_role(factory(), modal=role_id in genome.modal_roles)
        report.roles_acquired.append(role_id)
    target = genome.active_role
    if activate and target is not None and ship.has_role(target):
        if ship.active_role_id != target:
            ship.assign_role(target)
            report.activated = target
    return report
