"""Netbots: autonomous mobile hardware components.

"Autonomous mobile hardware components (*netbots*) take care for
delivering their own 'driver' routines (mobile code) at 'docking time'
on the ship."

A netbot is *physical* cargo: it travels the topology hop by hop at
freight speed (orders slower than packets), re-planning its path at
every hop so it survives topology churn.  On arrival it first injects
its driver into the ship's NodeOS (the mobile code it carries), then
docks its hardware module into a backplane slot — the driver-before-
circuitry synchronization of footnote 6.
"""

from __future__ import annotations

import itertools
from typing import Dict, Hashable, List, Tuple

from ..substrates.hardware import HardwareError, HardwareModule
from ..substrates.sim import Simulator, Timeout, spawn

NodeId = Hashable

_netbot_ids = itertools.count(1)


class NetbotState:
    IDLE = "idle"
    IN_TRANSIT = "in-transit"
    DOCKED = "docked"
    STRANDED = "stranded"
    REJECTED = "rejected"


class Netbot:
    """One autonomous plug-and-play hardware component on the move."""

    def __init__(self, sim: Simulator, module: HardwareModule,
                 location: NodeId, credential=None,
                 hop_transit_time: float = 30.0):
        if hop_transit_time <= 0:
            raise ValueError("hop_transit_time must be positive")
        self.netbot_id = next(_netbot_ids)
        self.sim = sim
        self.module = module
        self.location = location
        self.credential = credential
        self.hop_transit_time = float(hop_transit_time)
        self.state = NetbotState.IDLE
        self.hops_travelled = 0
        self.docked_slot = None
        self.itinerary: List[Tuple[float, NodeId]] = [(sim.now, location)]

    def dispatch(self, ships: Dict[NodeId, object], target: NodeId):
        """Travel to ``target`` and dock there; returns the process.

        ``ships`` maps node ids to Ship objects (the netbot needs the
        target's NodeOS and backplane at docking time, plus the topology
        through any member's fabric).
        """
        if self.state == NetbotState.IN_TRANSIT:
            raise RuntimeError(f"netbot #{self.netbot_id} already moving")
        return spawn(self.sim, self._travel(ships, target),
                     name=f"netbot-{self.netbot_id}")

    # -- the journey --------------------------------------------------------
    def _travel(self, ships: Dict[NodeId, object], target: NodeId):
        self.state = NetbotState.IN_TRANSIT
        self.sim.trace.emit("netbot.depart", netbot=self.netbot_id,
                            frm=self.location, to=target)
        topology = self._topology(ships)
        max_replans = 50
        replans = 0
        while self.location != target:
            path = topology.path(self.location, target, weight="hops")
            if path is None or len(path) < 2:
                replans += 1
                if replans > max_replans:
                    self.state = NetbotState.STRANDED
                    self.sim.trace.emit("netbot.stranded",
                                        netbot=self.netbot_id,
                                        at=self.location)
                    return False
                # Wait for the topology to change, then re-plan.
                yield Timeout(self.hop_transit_time)
                continue
            next_hop = path[1]
            yield Timeout(self.hop_transit_time)
            if not (topology.has_link(self.location, next_hop)
                    and topology.link(self.location, next_hop).up):
                continue  # the link vanished mid-transit; re-plan
            self.location = next_hop
            self.hops_travelled += 1
            self.itinerary.append((self.sim.now, next_hop))
            self.sim.trace.emit("netbot.hop", netbot=self.netbot_id,
                                at=next_hop)
        return self._dock(ships.get(target))

    def _topology(self, ships: Dict[NodeId, object]):
        any_ship = next(iter(ships.values()))
        return any_ship.fabric.topology

    # -- docking --------------------------------------------------------------
    def _dock(self, ship) -> bool:
        """Driver first, then circuitry (footnote 6's synchronization)."""
        if ship is None or not ship.alive:
            self.state = NetbotState.STRANDED
            return False
        try:
            ship.nodeos.install_driver(self.module.driver,
                                       cred=self.credential)
        except PermissionError:
            self.state = NetbotState.REJECTED
            self.sim.trace.emit("netbot.rejected", netbot=self.netbot_id,
                                ship=ship.ship_id, reason="driver-denied")
            return False
        try:
            self.docked_slot = ship.backplane.dock(self.module, ship.nodeos)
        except HardwareError as exc:
            self.state = NetbotState.REJECTED
            self.sim.trace.emit("netbot.rejected", netbot=self.netbot_id,
                                ship=ship.ship_id, reason=str(exc))
            return False
        self.state = NetbotState.DOCKED
        ship.reconfig_events.append(
            (self.sim.now, "hardware", ship.backplane.DOCK_SECONDS))
        self.sim.trace.emit("netbot.dock", netbot=self.netbot_id,
                            ship=ship.ship_id,
                            function=self.module.function_id)
        return True

    def undock(self, ship) -> bool:
        if self.state != NetbotState.DOCKED or self.docked_slot is None:
            return False
        ship.backplane.eject(self.docked_slot)
        self.docked_slot = None
        self.state = NetbotState.IDLE
        self.sim.trace.emit("netbot.undock", netbot=self.netbot_id,
                            ship=ship.ship_id)
        return True

    def __repr__(self) -> str:
        return (f"<Netbot #{self.netbot_id} {self.module.function_id} "
                f"{self.state} at={self.location}>")
