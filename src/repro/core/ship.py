"""Ships: active mobile nodes (the node manifestation of a ployon).

"Active nodes may be mobile, — hence the name *ships* —, and
re-configurable (in terms of software and hardware).  In addition to
traditional active nodes, ships can be also modified by shuttles."

A ship is a living entity (SRP.2: "they can be born, live and die"),
owns a NodeOS, a reconfigurable gate fabric, a plug-and-play backplane
and a knowledge base, performs exactly one *active* role at a time
(Section D postulate) while holding further roles resident, interprets
arriving shuttles (subject to its WN generation's capabilities), and
keeps DCP congruence statistics.

Routing is pluggable: a router object with

``next_hop(ship_id, dst) -> Optional[node]``
    forwarding decision;
``handle_control(ship, packet, from_node) -> bool``
    protocol chatter interception (optional);
``on_attached(ship)``
    wiring hook (optional).

Implementations live in :mod:`repro.routing`.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Callable, Dict, Hashable, List, Optional, Tuple

from ..functions import (NextStepRole, Role, RoleCatalog,
                         SecurityManagementRole, default_catalog)
from ..obs import TRACE_META_KEY
from ..resilience.wire import ACK_KIND, ARQ_META_KEY
from ..substrates.hardware import Backplane, GateFabric, HardwareError
from ..substrates.nodeos import Action, NodeOS, NodeOSError
from ..substrates.phys import Datagram, NetworkFabric
from ..substrates.sim import Simulator
from .congruence import CongruenceTracker
from .generations import Capability, Generation, supports
from .genetics import encode_ship, transcribe
from .knowledge import Fact, KnowledgeBase, NetFunction
from .ployon import Manifestation, Ployon
from .shuttle import (OP_ACQUIRE_ROLE, OP_ACTIVATE_ROLE, OP_DEPLOY_QUANTUM,
                      OP_INSTALL_CODE, OP_INSTALL_DRIVER, OP_LOAD_BITSTREAM,
                      OP_RELEASE_ROLE, OP_REQUEST_STATE, OP_SET_NEXT_STEP,
                      OP_TRANSCRIBE_GENOME, Directive, Jet, Shuttle)

DeliveryHandler = Callable[[Datagram, Hashable], None]

#: Process-wide admission verifier (repro.staticcheck).  Shared so the
#: carried-code lint cache is filled once per role class, not once per
#: ship; imported lazily because staticcheck itself imports core types.
_ADMISSION_VERIFIER = None


def _shared_admission_verifier():
    # process-local memo: verdicts are pure functions of payload bytes,
    # so independently-filled per-worker caches cannot diverge
    # via: ignore[VIA013]
    global _ADMISSION_VERIFIER
    if _ADMISSION_VERIFIER is None:
        from ..staticcheck.admission import AdmissionVerifier
        _ADMISSION_VERIFIER = AdmissionVerifier()
    return _ADMISSION_VERIFIER


class ShipError(Exception):
    """Raised for invalid ship operations."""


class Ship(Ployon):
    """An active mobile re-configurable node of a Wandering Network."""

    manifestation = Manifestation.SHIP

    #: Bound on the replay-suppression ledgers (oldest entries evicted),
    #: so long runs cannot grow them without limit.
    LEDGER_CAP = 4096

    def __init__(self, sim: Simulator, fabric: NetworkFabric,
                 ship_id: Hashable,
                 catalog: Optional[RoleCatalog] = None,
                 router=None,
                 generation: Generation = Generation.G4,
                 ship_class: str = "agent",
                 authority=None,
                 morphing_enabled: bool = True,
                 honest: bool = True,
                 knowledge_capacity: int = 512,
                 fact_decay_rate: float = 0.01,
                 hw_cells: int = 8192,
                 hw_slots: int = 2,
                 cpu_ops_per_second: float = 1e8,
                 cache_bytes: int = 1 << 20,
                 max_auxiliary_ees: int = 8):
        super().__init__()
        self.sim = sim
        self.fabric = fabric
        self.ship_id = ship_id
        self.ship_class = ship_class
        self.catalog = catalog if catalog is not None else default_catalog()
        self.generation = Generation(generation)
        self.morphing_enabled = morphing_enabled
        self.honest = honest

        self.nodeos = NodeOS(sim, ship_id, authority=authority,
                             cpu_ops_per_second=cpu_ops_per_second,
                             cache_bytes=cache_bytes,
                             max_auxiliary_ees=max_auxiliary_ees)
        self.fabric_hw = GateFabric(total_cells=hw_cells)
        self.backplane = Backplane(slots=hw_slots)
        self.knowledge = KnowledgeBase(capacity=knowledge_capacity,
                                       decay_rate=fact_decay_rate)
        self.congruence = CongruenceTracker()

        #: role_id -> {"role": Role, "modal": bool, "ee": label,
        #:             "function": NetFunction}
        self.roles: Dict[str, Dict[str, Any]] = {}
        self.active_role_id: Optional[str] = None
        self.role_changes: List[Tuple[float, Optional[str], str]] = []

        self._delivery_handlers: List[DeliveryHandler] = []
        self._comm: Dict[Hashable, int] = {}
        self.alive = True
        self.born_at = sim.now
        self.died_at: Optional[float] = None

        self.packets_forwarded = 0
        self.packets_delivered = 0
        self.packets_dropped = 0
        self.shuttles_processed = 0
        self.shuttles_rejected = 0
        self.jets_replicated = 0

        #: Static admission gate (repro.staticcheck): every docking
        #: shuttle's payload is vetted before any directive executes.
        self.admission = _shared_admission_verifier()
        self.admission_enabled = True
        self.shuttles_admission_rejected = 0

        #: At-least-once delivery hardening (repro.resilience): replayed
        #: shuttles are recognised by their ARQ message id and answered
        #: from this ledger instead of re-running their directives.
        self.dedup_enabled = True
        self._shuttle_ledger: "OrderedDict[str, Dict[str, Any]]" = \
            OrderedDict()
        self._absorbed_kqs: "OrderedDict[int, None]" = OrderedDict()
        self.duplicate_shuttles = 0
        #: Directives of one message applied more than once — stays zero
        #: while dedup is on; chaos campaigns assert it network-wide.
        self.double_applied = 0
        self.acks_sent = 0
        #: (time, tier, delay) per reconfiguration: tiers are
        #: "activate" / "software" / "hardware" (Figure 2's cost ladder).
        self.reconfig_events: List[Tuple[float, str, float]] = []

        #: Credential used when the ship itself emits shuttles (set by
        #: the WanderingNetwork to its operator credential).
        self.default_credential = None

        self.router = router
        if router is not None and hasattr(router, "on_attached"):
            router.on_attached(self)

        fabric.attach(ship_id, self)
        # "The Next-Step function ... is a standard module for each
        # node/ship."
        self.acquire_role(NextStepRole(), modal=True)
        sim.trace.emit("ship.born", ship=ship_id, cls=ship_class,
                       generation=int(self.generation))
        if sim.obs.on:
            sim.obs.ship_lifecycle.inc(node=ship_id, event="born")

    # ------------------------------------------------------------------
    # Ployon structure (the DCP vocabulary)
    # ------------------------------------------------------------------
    def structure(self) -> Dict[str, Any]:
        return {
            "functions": tuple(sorted(self.roles)),
            "hardware": tuple(sorted(
                set(self.fabric_hw.describe()["functions"])
                | set(self.backplane.describe()["modules"]))),
            "knowledge": tuple(sorted(self.knowledge.classes())),
            "interface": self.interface,
        }

    @property
    def interface(self) -> Tuple[str, ...]:
        """The protocol surface shuttles must match at the dock."""
        return ("wli/1", f"class/{self.ship_class}")

    def requirements(self) -> Dict[str, Any]:
        """What an approaching shuttle must morph to (DCP)."""
        return {"interface": self.interface, "ship_class": self.ship_class}

    # ------------------------------------------------------------------
    # Roles (Section D: one active function at a time)
    # ------------------------------------------------------------------
    def has_role(self, role_id: str) -> bool:
        return role_id in self.roles

    def role(self, role_id: str) -> Role:
        meta = self.roles.get(role_id)
        if meta is None:
            raise ShipError(f"{self.ship_id} has no role {role_id}")
        return meta["role"]

    @property
    def next_step(self) -> NextStepRole:
        return self.roles[NextStepRole.role_id]["role"]

    def acquire_role(self, role: Role, modal: bool = False) -> Role:
        """Install a role: code into the cache, an EE bound to it (SRP.3:
        ships "can acquire or learn other functions")."""
        if role.role_id in self.roles:
            raise ShipError(f"{self.ship_id} already has {role.role_id}")
        module = type(role).code_module()
        ee_label = f"EE:{role.role_id}"
        self.nodeos.provision_function(ee_label, module, modal=modal)
        function = NetFunction(role.role_id,
                               role.supporting_fact_classes)
        self.roles[role.role_id] = {"role": role, "modal": modal,
                                    "ee": ee_label, "function": function}
        # PMP.3 bootstrap: a fresh function starts with one implanted
        # experience per supporting class, giving it a decaying initial
        # lifetime that only real demand can prolong.
        for fact_class in role.supporting_fact_classes:
            self.record_fact(fact_class, ("bootstrap", role.role_id))
        self.sim.trace.emit("ship.role.acquire", ship=self.ship_id,
                            role=role.role_id, modal=modal)
        return role

    def release_role(self, role_id: str) -> Role:
        if role_id == NextStepRole.role_id:
            raise ShipError("the Next-Step standard module cannot be released")
        meta = self.roles.pop(role_id, None)
        if meta is None:
            raise ShipError(f"{self.ship_id} has no role {role_id}")
        if self.active_role_id == role_id:
            meta["role"].on_deactivate(self)
            self.active_role_id = None
        ee = self.nodeos.ees.get(meta["ee"])
        if ee is not None:
            ee.unbind()
            self.nodeos.ees.free(meta["ee"])
        self.nodeos.cache.unpin(role_id)
        self.sim.trace.emit("ship.role.release", ship=self.ship_id,
                            role=role_id)
        return meta["role"]

    def assign_role(self, role_id: str) -> float:
        """Make ``role_id`` the ship's single active function.

        Returns the reconfiguration delay.  Resident activation is the
        cheap tier of Figure 2; acquiring the role first (via shuttle or
        hardware) pays the expensive tiers.
        """
        meta = self.roles.get(role_id)
        if meta is None:
            raise ShipError(f"{self.ship_id} cannot assign unknown "
                            f"role {role_id}")
        previous = self.active_role_id
        if previous == role_id:
            return 0.0
        if previous is not None:
            prev_meta = self.roles[previous]
            prev_meta["role"].on_deactivate(self)
            ee = self.nodeos.ees.get(prev_meta["ee"])
            if ee is not None:
                ee.deactivate()
        self.nodeos.activate_function(meta["ee"])
        meta["role"].on_activate(self)
        self.active_role_id = role_id
        delay = self.nodeos.cpu.execute(10_000, "role-switch") \
            / 1.0  # resident switch: bookkeeping only
        self.role_changes.append((self.sim.now, previous, role_id))
        self.reconfig_events.append((self.sim.now, "activate", delay))
        self.sim.trace.emit("ship.role.change", ship=self.ship_id,
                            prev=previous, role=role_id)
        return delay

    @property
    def active_role(self) -> Optional[Role]:
        if self.active_role_id is None:
            return None
        return self.roles[self.active_role_id]["role"]

    def tick_roles(self) -> None:
        """Periodic role housekeeping (driven by the WN pulse)."""
        for meta in self.roles.values():
            meta["role"].on_tick(self, self.sim.now)

    def live_functions(self) -> List[str]:
        """Roles whose supporting facts are still alive (PMP.3)."""
        now = self.sim.now
        return sorted(rid for rid, meta in self.roles.items()
                      if meta["function"].alive(self.knowledge, now))

    def expired_functions(self) -> List[str]:
        now = self.sim.now
        return sorted(rid for rid, meta in self.roles.items()
                      if not meta["function"].alive(self.knowledge, now))

    # ------------------------------------------------------------------
    # Knowledge (PMP)
    # ------------------------------------------------------------------
    def record_fact(self, fact_class: str, value: Any,
                    weight: float = 1.0) -> Fact:
        fact = Fact(fact_class, value, created_at=self.sim.now,
                    source=self.ship_id, weight=weight)
        return self.knowledge.record(fact, self.sim.now)

    # ------------------------------------------------------------------
    # Lifecycle (SRP.2: born, live, die)
    # ------------------------------------------------------------------
    def die(self) -> None:
        if not self.alive:
            return
        self.alive = False
        self.died_at = self.sim.now
        self.fabric.detach(self.ship_id)
        # The physical node goes dark with its ship: neighbours' routing
        # must see the links as gone, not just a silent host.
        if self.ship_id in self.fabric.topology:
            self.fabric.topology.set_node_state(self.ship_id, False)
        self.sim.trace.emit("ship.die", ship=self.ship_id)
        if self.sim.obs.on:
            self.sim.obs.ship_lifecycle.inc(node=self.ship_id, event="die")

    # ------------------------------------------------------------------
    # Self-description (SRP.1)
    # ------------------------------------------------------------------
    def describe(self) -> Dict[str, Any]:
        """The ship's true self-description."""
        return {
            "ship": self.ship_id,
            "class": self.ship_class,
            "generation": int(self.generation),
            "roles": sorted(self.roles),
            "active_role": self.active_role_id,
            "structure": self.structure(),
            "alive": self.alive,
        }

    def publish(self) -> Dict[str, Any]:
        """What the ship tells the world.  SRP.1 requires ships to "be
        fair and cooperative w.r.t. the information they display";
        a dishonest ship misrepresents its roles and gets excluded by
        the reputation system."""
        desc = self.describe()
        if not self.honest:
            desc = dict(desc)
            desc["roles"] = ["fn.fusion", "fn.caching", "fn.transcoding"]
            desc["active_role"] = "fn.fusion"
        return desc

    def comm_pattern(self) -> Dict[str, int]:
        """Per-neighbour packet counts (encoded into genomes)."""
        return {str(k): v for k, v in sorted(self._comm.items(), key=lambda kv: repr(kv[0]))}

    # ------------------------------------------------------------------
    # Data path
    # ------------------------------------------------------------------
    def on_deliver(self, fn: DeliveryHandler) -> None:
        self._delivery_handlers.append(fn)

    def neighbors(self) -> List[Hashable]:
        return self.fabric.topology.neighbors(self.ship_id)

    def originate(self, packet: Datagram) -> None:
        """Inject locally generated traffic through the full pipeline.

        Unlike :meth:`send_toward` (pure forwarding), origination runs
        the ship's screening and active function first — an active
        node's own traffic is subject to its own functions (e.g. a
        delegation point that migrated onto the user's node intercepts
        her task capsules right here).
        """
        if packet.created_at == 0.0 and self.sim.now > 0.0:
            packet.created_at = self.sim.now
        self.receive(packet, from_node=self.ship_id)

    def send_toward(self, packet: Datagram) -> bool:
        """Route one packet toward its destination."""
        if not self.alive:
            return False
        obs = self.sim.obs
        if obs.on and isinstance(packet, Shuttle) \
                and TRACE_META_KEY not in packet.meta:
            # First send of a shuttle journey: open the causal root.
            root = obs.tracer.start_trace(
                f"shuttle#{packet.packet_id}", self.ship_id, self.sim.now)
            root.attrs.update(src=packet.src, dst=packet.dst,
                              ops=[d.op for d in packet.directives],
                              jet=isinstance(packet, Jet))
            packet.meta[TRACE_META_KEY] = root.context
        if packet.dst == self.ship_id:
            self.deliver_local(packet, None)
            return True
        if packet.is_broadcast:
            sent = self.fabric.broadcast(self.ship_id, packet)
            return sent > 0
        hop = None
        if self.router is not None:
            hop = self.router.next_hop(self.ship_id, packet.dst)
        if hop is None:
            # Reactive routers may buffer the packet pending discovery.
            if (self.router is not None
                    and hasattr(self.router, "on_no_route")
                    and self.router.on_no_route(self, packet)):
                return True
            self.packets_dropped += 1
            if obs.on:
                obs.node_packets.inc(node=self.ship_id, event="drop-noroute")
            self.sim.trace.emit("ship.drop.noroute", ship=self.ship_id,
                                dst=packet.dst)
            return False
        breakers = self.fabric.breakers
        if breakers is not None and breakers.blocked(self.ship_id, hop):
            alt = self._reroute_around(hop, packet.dst, breakers)
            if alt is not None:
                if obs.on:
                    obs.resilience_events.inc(event="reroute")
                self.sim.trace.emit("ship.reroute", ship=self.ship_id,
                                    avoided=hop, via=alt, dst=packet.dst)
                hop = alt
        self._comm[hop] = self._comm.get(hop, 0) + 1
        self.packets_forwarded += 1
        if obs.on:
            obs.node_packets.inc(node=self.ship_id, event="forward")
        return self.fabric.send(self.ship_id, hop, packet)

    def _reroute_around(self, blocked_hop: Hashable, dst: Hashable,
                        breakers) -> Optional[Hashable]:
        """An alternate first hop avoiding a tripped breaker.

        Prefers neighbours the routing layer can route onward from;
        falls back to any non-blocked up neighbour (the TTL bounds any
        detour loops).  Returns None when every alternative is blocked
        — the send then proceeds on the original hop and fails fast at
        the fabric, which is what feeds the breaker's recovery probes.
        """
        fallback = None
        for neighbor in self.neighbors():
            if neighbor == blocked_hop \
                    or breakers.blocked(self.ship_id, neighbor):
                continue
            if neighbor == dst:
                return neighbor
            onward = None
            if self.router is not None:
                try:
                    onward = self.router.next_hop(neighbor, dst)
                except Exception:
                    onward = None
            if onward is not None and onward != self.ship_id:
                return neighbor
            if fallback is None:
                fallback = neighbor
        return fallback

    def deliver_local(self, packet: Datagram,
                      from_node: Optional[Hashable]) -> None:
        self.packets_delivered += 1
        obs = self.sim.obs
        if obs.on:
            obs.node_packets.inc(node=self.ship_id, event="deliver")
            obs.session_packets.inc(session=packet.flow_id)
            obs.session_latency.observe(self.sim.now - packet.created_at)
            obs.packet_hops.observe(packet.hops)
            ctx = packet.meta.get(TRACE_META_KEY)
            if ctx is not None:
                obs.tracer.event(f"deliver:{self.ship_id}", ctx,
                                 self.ship_id, self.sim.now,
                                 hops=packet.hops)
        self.sim.trace.emit("ship.deliver", ship=self.ship_id,
                            packet=packet.packet_id)
        for fn in self._delivery_handlers:
            fn(packet, from_node)

    def receive(self, packet: Datagram, from_node: Hashable) -> None:
        if not self.alive:
            return
        self._comm[from_node] = self._comm.get(from_node, 0) + 1
        # Security screening applies to everything when the role is held.
        screen = self.roles.get(SecurityManagementRole.role_id)
        if screen is not None:
            if screen["role"].handle(self, packet, from_node):
                return
        if isinstance(packet, Jet):
            self._receive_jet(packet, from_node)
            return
        if isinstance(packet, Shuttle):
            self._receive_shuttle(packet, from_node)
            return
        if (self.router is not None
                and hasattr(self.router, "handle_control")
                and self.router.handle_control(self, packet, from_node)):
            return
        # The standard Next-Step module sees control capsules always.
        if self.next_step.handle(self, packet, from_node):
            return
        # The single active function gets the packet next.
        active = self.active_role
        if active is not None and active is not self.next_step:
            # Hardware-accelerated or plain CPU cost of running the
            # function on this packet, accounted against its EE.
            delay = self._role_cpu_delay(active)
            ee = self.nodeos.ees.get(self.roles[active.role_id]["ee"])
            if ee is not None:
                ee.record_invocation(delay)
            if active.handle(self, packet, from_node):
                return
        if packet.dst == self.ship_id or packet.is_broadcast:
            # Receiving is an experience too — demand facts accrue at
            # destinations, not only along the path.
            self._observe_packet(packet)
            self.deliver_local(packet, from_node)
        else:
            self._observe_packet(packet)
            self.nodeos.forward_cost()
            self.send_toward(packet)

    #: Default mapping of payload kinds to recorded experience facts —
    #: ships record passing traffic as "facts (events, experiences)"
    #: (PMP.2), which is what lets demand attract wandering functions
    #: to nodes that do not hold the matching role yet.
    OBSERVED_KINDS = {
        "content-request": ("content-request", "key"),
        "media": ("flow", None),
        "sensor": ("flow", None),
        "task": ("task-origin", "origin"),
    }

    def _observe_packet(self, packet: Datagram) -> None:
        payload = packet.payload
        if not isinstance(payload, dict):
            return
        kind = payload.get("kind")
        spec = self.OBSERVED_KINDS.get(kind)
        if spec is not None:
            fact_class, field = spec
            value = packet.flow_id if field is None else payload.get(field)
            if value is not None:
                self.record_fact(fact_class, value, weight=0.5)
        group = payload.get("group")
        if group is not None:
            self.record_fact("multicast-group", group, weight=0.5)

    def _role_cpu_delay(self, role: Role) -> float:
        speedup = max(self.fabric_hw.hardware_speedup(role.role_id),
                      self.backplane.hardware_speedup(role.role_id))
        ops = role.cpu_ops_per_packet / speedup
        return self.nodeos.cpu.execute(ops, f"role:{role.role_id}")

    # ------------------------------------------------------------------
    # Shuttle interpretation (the hyperactive part)
    # ------------------------------------------------------------------
    def _receive_shuttle(self, shuttle: Shuttle, from_node: Hashable) -> None:
        if shuttle.dst != self.ship_id and not shuttle.is_broadcast:
            # In transit: shuttles are just (actively routed) packets.
            self.nodeos.forward_cost()
            self.send_toward(shuttle)
            return
        self.process_shuttle(shuttle, from_node)

    def process_shuttle(self, shuttle: Shuttle,
                        from_node: Optional[Hashable]) -> Dict[str, Any]:
        """Dock a shuttle: morph, authorize, and run its directives.

        Returns a report dict (also emitted on the trace bus).
        """
        report: Dict[str, Any] = {"applied": [], "denied": [],
                                  "failed": [], "morphed": False}
        obs = self.sim.obs
        observing = obs.on
        ctx = shuttle.meta.get(TRACE_META_KEY) if observing else None
        # -- at-least-once hardening: suppress replayed deliveries ------
        arq = shuttle.meta.get(ARQ_META_KEY)
        if arq is not None and self.dedup_enabled:
            cached = self._shuttle_ledger.get(arq["msg"])
            if cached is not None:
                self.duplicate_shuttles += 1
                if observing:
                    obs.resilience_events.inc(event="duplicate")
                    if ctx is not None:
                        obs.tracer.event(f"duplicate:{self.ship_id}", ctx,
                                         self.ship_id, self.sim.now,
                                         msg=arq["msg"])
                self.sim.trace.emit("ship.shuttle.duplicate",
                                    ship=self.ship_id,
                                    shuttle=shuttle.packet_id,
                                    msg=arq["msg"])
                # Re-ack: the original ack may be the thing that was lost.
                self._send_arq_ack(arq, duplicate=True)
                return dict(cached)
        # -- DCP: the approaching shuttle must match our interface ------
        requirements = self.requirements()
        if not shuttle.compatible_with(requirements):
            if self.morphing_enabled:
                report["morphed"] = shuttle.morph_for(requirements)
                if report["morphed"] and observing:
                    obs.shuttle_events.inc(node=self.ship_id,
                                           event="morph")
                    if ctx is not None:
                        obs.tracer.event(f"morph:{self.ship_id}", ctx,
                                         self.ship_id, self.sim.now,
                                         target_class=shuttle.target_class)
            if not shuttle.compatible_with(requirements):
                self.shuttles_rejected += 1
                report["rejected"] = "interface-mismatch"
                if observing:
                    obs.shuttle_events.inc(node=self.ship_id,
                                           event="reject")
                    if ctx is not None:
                        obs.tracer.event(f"reject:{self.ship_id}", ctx,
                                         self.ship_id, self.sim.now,
                                         reason="interface-mismatch")
                self.sim.trace.emit("ship.shuttle.reject",
                                    ship=self.ship_id,
                                    shuttle=shuttle.packet_id)
                self._finish_arq(arq, report)
                return report
        # -- static admission (repro.staticcheck): reject poison payloads
        # before anything executes.  The vet is pure (no RNG draws, no
        # sim events, no shuttle mutation), so a rejection cannot perturb
        # the run digest of unaffected traffic.
        if self.admission_enabled:
            verdict = self.admission.vet(shuttle, self)
            if not verdict.ok:
                self.shuttles_rejected += 1
                self.shuttles_admission_rejected += 1
                report["rejected"] = f"admission:{verdict.reason_code}"
                report["admission"] = list(verdict.reasons)
                if observing:
                    obs.shuttle_events.inc(node=self.ship_id,
                                           event="reject")
                    obs.rejected_quanta.inc(node=self.ship_id,
                                            reason=verdict.reason_code)
                    for rule in verdict.lint_rules:
                        obs.lint_findings.inc(rule=rule)
                    if ctx is not None:
                        obs.tracer.event(f"reject:{self.ship_id}", ctx,
                                         self.ship_id, self.sim.now,
                                         reason=report["rejected"])
                self.sim.trace.emit("ship.shuttle.admission.reject",
                                    ship=self.ship_id,
                                    shuttle=shuttle.packet_id,
                                    reason=verdict.reason_code)
                self._finish_arq(arq, report)
                return report
        ship_before = self.structure()
        # Interpretation costs CPU proportional to cargo size.
        self.nodeos.execute_capsule(shuttle.size_bytes, category="shuttle")
        for directive in shuttle.directives:
            outcome = self._apply_directive(directive, shuttle)
            report[outcome].append(directive.op)
            if observing:
                obs.directives.inc(op=directive.op, outcome=outcome)
        ship_after = self.structure()
        self.congruence.record_processed(self.sim.now, shuttle.structure(),
                                         ship_before, ship_after)
        self.shuttles_processed += 1
        if observing:
            obs.shuttle_events.inc(node=self.ship_id, event="process")
            if ctx is not None:
                dock = obs.tracer.event(
                    f"dock:{self.ship_id}", ctx, self.ship_id,
                    self.sim.now, applied=len(report["applied"]),
                    denied=len(report["denied"]),
                    failed=len(report["failed"]),
                    morphed=report["morphed"])
                # Fan-out after docking (jet replication, onward
                # propagation) parents under the dock span.
                shuttle.meta[TRACE_META_KEY] = dock.context
        self.sim.trace.emit("ship.shuttle.process", ship=self.ship_id,
                            shuttle=shuttle.packet_id,
                            applied=len(report["applied"]),
                            denied=len(report["denied"]))
        self._finish_arq(arq, report)
        return report

    def _finish_arq(self, arq: Optional[Dict[str, Any]],
                    report: Dict[str, Any]) -> None:
        """Record the outcome in the replay ledger and ack the source."""
        if arq is None:
            return
        msg = arq["msg"]
        if msg in self._shuttle_ledger:
            # Only reachable with dedup disabled: the directives of this
            # message ran a second time.
            self.double_applied += 1
        self._ledger_put(self._shuttle_ledger, msg, dict(report))
        self._send_arq_ack(arq)

    def _ledger_put(self, ledger: OrderedDict, key, value) -> None:
        ledger[key] = value
        ledger.move_to_end(key)
        while len(ledger) > self.LEDGER_CAP:
            ledger.popitem(last=False)

    def _send_arq_ack(self, arq: Dict[str, Any],
                      duplicate: bool = False) -> None:
        ack = Datagram(self.ship_id, arq["src"], size_bytes=64,
                       payload={"kind": ACK_KIND, "msg": arq["msg"],
                                "origin": self.ship_id,
                                "duplicate": duplicate},
                       created_at=self.sim.now)
        self.acks_sent += 1
        if self.sim.obs.on:
            self.sim.obs.resilience_events.inc(event="ack")
        self.send_toward(ack)

    def vet_shuttle(self, shuttle: Shuttle,
                    check_authorization: bool = False):
        """Statically vet a shuttle against this ship without docking it.

        The sender-side "would this land?" precheck: with
        ``check_authorization=True`` the verdict additionally proves
        every directive's required action against this ship's
        SecurityManager policy (a pure query — no denial is recorded).
        Returns the :class:`~repro.staticcheck.admission.Verdict`.
        """
        return self.admission.vet(shuttle, self,
                                  check_authorization=check_authorization)

    def _capability_for(self, op: str) -> str:
        if op in (OP_INSTALL_CODE, OP_ACQUIRE_ROLE, OP_ACTIVATE_ROLE,
                  OP_RELEASE_ROLE, OP_SET_NEXT_STEP, OP_REQUEST_STATE,
                  OP_DEPLOY_QUANTUM):
            return Capability.EE_PROGRAMMING
        if op == OP_INSTALL_DRIVER:
            return Capability.NODEOS_PROGRAMMING
        if op == OP_LOAD_BITSTREAM:
            return Capability.HW_RECONFIGURATION
        return Capability.SELF_DISTRIBUTION  # transcribe-genome

    def _apply_directive(self, d: Directive, shuttle: Shuttle) -> str:
        """Run one directive; returns 'applied' / 'denied' / 'failed'."""
        if not supports(self.generation, self._capability_for(d.op)):
            return "denied"
        cred = shuttle.credential
        try:
            if d.op == OP_INSTALL_CODE:
                self.nodeos.install_code(d.args["module"], cred=cred)
            elif d.op == OP_INSTALL_DRIVER:
                self.nodeos.install_driver(d.args["module"], cred=cred)
            elif d.op == OP_LOAD_BITSTREAM:
                self._load_bitstream(d.args["bitstream"], cred)
            elif d.op == OP_ACQUIRE_ROLE:
                self._acquire_role_directive(d, cred)
            elif d.op == OP_ACTIVATE_ROLE:
                if not self.nodeos.authorize(cred, Action.RECONFIGURE):
                    return "denied"
                self.assign_role(d.args["role_id"])
            elif d.op == OP_RELEASE_ROLE:
                if not self.nodeos.authorize(cred, Action.RECONFIGURE):
                    return "denied"
                self.release_role(d.args["role_id"])
            elif d.op == OP_SET_NEXT_STEP:
                self.next_step.set_next(d.args["role_id"], self.sim.now)
            elif d.op == OP_DEPLOY_QUANTUM:
                self._deploy_quantum(d, cred)
            elif d.op == OP_TRANSCRIBE_GENOME:
                if not self.nodeos.authorize(cred, Action.RECONFIGURE):
                    return "denied"
                transcribe(d.args["genome"], self, self.catalog,
                           activate=d.args.get("activate", True))
            elif d.op == OP_REQUEST_STATE:
                if not self.nodeos.authorize(cred, Action.READ_STATE):
                    return "denied"
                self._reply_state(d.args.get("reply_to", shuttle.src))
            else:  # pragma: no cover — ALL_OPS is closed
                return "failed"
        except PermissionError:
            return "denied"
        except (NodeOSError, HardwareError, ShipError, KeyError):
            return "failed"
        return "applied"

    def _acquire_role_directive(self, d: Directive, cred) -> None:
        if not self.nodeos.authorize(cred, Action.RECONFIGURE):
            raise PermissionError("acquire-role denied")
        role_id = d.args.get("role_id")
        module = d.args.get("module")
        if self.has_role(role_id):
            return
        # Resource access control: a principal may only hold so many
        # EEs on one ship (Quota.max_ees).
        principal = getattr(cred, "principal", None)
        if principal is not None:
            quota = self.nodeos.security.quota_for(principal)
            owned = sum(1 for meta in self.roles.values()
                        if meta.get("owner") == principal)
            if owned >= quota.max_ees:
                self.nodeos.security.denials.append(
                    (self.sim.now, principal, "ee-quota"))
                raise PermissionError(
                    f"{principal} EE quota exhausted on {self.ship_id}")
        if module is not None and module.entry is not None:
            role = module.entry()
        else:
            role = self.catalog.create(role_id)
        start = self.sim.now
        self.acquire_role(role, modal=d.args.get("modal", False))
        if principal is not None:
            self.roles[role_id]["owner"] = principal
        delay = self.nodeos.cpu.backlog
        self.reconfig_events.append((start, "software", max(delay, 1e-6)))

    def _load_bitstream(self, bitstream, cred) -> None:
        if not self.nodeos.authorize(cred, Action.RECONFIGURE_HW):
            raise PermissionError("hw reconfiguration denied")
        region = self.fabric_hw.find_function(bitstream.function_id)
        if region is None:
            # Re-use a free region of sufficient size or allocate.
            region = next((r for r in self.fabric_hw.regions
                           if not r.configured
                           and r.cells >= bitstream.cells), None)
            if region is None:
                region = self.fabric_hw.allocate_region(bitstream.cells)
        delay = self.fabric_hw.load(region, bitstream, now=self.sim.now)
        self.reconfig_events.append((self.sim.now, "hardware", delay))
        self.sim.trace.emit("ship.hw.load", ship=self.ship_id,
                            function=bitstream.function_id, delay=delay)

    def _deploy_quantum(self, d: Directive, cred) -> None:
        kq = d.args["quantum"]
        # Retransmitted shuttles carry the *same* quantum object, so its
        # id is a stable dedup key: absorbing twice would double-count
        # the snapshot weights under at-least-once delivery.
        if self.dedup_enabled and kq.kq_id in self._absorbed_kqs:
            self.sim.trace.emit("ship.kq.duplicate", ship=self.ship_id,
                                kq=kq.kq_id, fn=kq.function_id)
            return
        self._ledger_put(self._absorbed_kqs, kq.kq_id, None)
        self.knowledge.absorb_quantum(kq, self.sim.now)
        if d.args.get("auto_acquire") and kq.function_id in self.catalog \
                and not self.has_role(kq.function_id):
            if self.nodeos.authorize(cred, Action.RECONFIGURE):
                self.acquire_role(self.catalog.create(kq.function_id))
        self.sim.trace.emit("ship.kq.absorb", ship=self.ship_id,
                            fn=kq.function_id,
                            facts=len(kq.fact_snapshots))

    def _reply_state(self, reply_to: Hashable) -> None:
        reply = Datagram(self.ship_id, reply_to, size_bytes=256,
                         payload={"kind": "state-reply",
                                  "state": self.publish()})
        self.send_toward(reply)

    # ------------------------------------------------------------------
    # Jets (self-replication, 4G only)
    # ------------------------------------------------------------------
    def _receive_jet(self, jet: Jet, from_node: Hashable) -> None:
        # Jets execute at *every* ship they visit.
        jet.visited.add(self.ship_id)
        principal = getattr(jet.credential, "principal", None)
        authorized = (supports(self.generation, Capability.SELF_DISTRIBUTION)
                      and self.nodeos.authorize(jet.credential, Action.SPAWN))
        if authorized:
            self.process_shuttle(jet, from_node)
            self._replicate_jet(jet)
        else:
            self.shuttles_rejected += 1
            if self.sim.obs.on:
                self.sim.obs.shuttle_events.inc(node=self.ship_id,
                                                event="jet-reject")
            self.sim.trace.emit("ship.jet.reject", ship=self.ship_id,
                                jet=jet.packet_id, principal=principal)

    def _replicate_jet(self, jet: Jet) -> int:
        """Spawn jet copies toward unvisited neighbours (NodeOS-supervised)."""
        if jet.replicate_budget <= 0:
            return 0
        principal = getattr(jet.credential, "principal", "anonymous")
        targets = [n for n in self.neighbors() if n not in jet.visited]
        targets = targets[: jet.max_fanout]
        if not targets:
            return 0
        spawned = 0
        share = max(0, (jet.replicate_budget - len(targets)) // len(targets))
        obs = self.sim.obs
        ctx = jet.meta.get(TRACE_META_KEY) if obs.on else None
        for target in targets:
            if not self.nodeos.security.charge_spawn(principal):
                break
            copy = jet.spawn_copy(target, share)
            copy.visited.add(self.ship_id)
            jet.visited.add(target)
            self.jets_replicated += 1
            spawned += 1
            if obs.on:
                obs.shuttle_events.inc(node=self.ship_id, event="jet-spawn")
                if ctx is not None:
                    # Each replica branches the causal tree: its hops
                    # chain under its own spawn span.
                    spawn = obs.tracer.event(
                        f"jet-spawn:{target}", ctx, self.ship_id,
                        self.sim.now, budget=share)
                    copy.meta[TRACE_META_KEY] = spawn.context
            self.sim.trace.emit("ship.jet.spawn", ship=self.ship_id,
                                target=target, budget=share)
            self.send_toward(copy)
        return spawned

    # ------------------------------------------------------------------
    # Function propagation (the push half of WN code distribution)
    # ------------------------------------------------------------------
    def make_role_shuttle(self, role_id: str, dst: Hashable,
                          credential=None, activate: bool = False,
                          modal: bool = False) -> Shuttle:
        """Package a held role (code + knowledge quantum) into a shuttle."""
        meta = self.roles.get(role_id)
        if meta is None:
            raise ShipError(f"{self.ship_id} has no role {role_id}")
        role_cls = type(meta["role"])
        directives = [
            Directive(OP_ACQUIRE_ROLE, role_id=role_id,
                      module=role_cls.code_module(), modal=modal),
            Directive(OP_DEPLOY_QUANTUM,
                      quantum=self.knowledge.make_quantum(
                          meta["function"], self.sim.now,
                          origin=self.ship_id)),
        ]
        if activate:
            directives.append(Directive(OP_ACTIVATE_ROLE, role_id=role_id))
        shuttle = Shuttle(self.ship_id, dst, directives=directives,
                          credential=credential,
                          interface=self.interface)
        self.congruence.record_emitted(self.sim.now, shuttle.structure(),
                                       self.structure())
        return shuttle

    def make_genome_shuttle(self, dst: Hashable, credential=None,
                            activate: bool = True) -> Shuttle:
        """Node Genesis: embed this ship's structure into a shuttle."""
        genome = encode_ship(self, self.sim.now)
        shuttle = Shuttle(self.ship_id, dst, directives=[
            Directive(OP_TRANSCRIBE_GENOME, genome=genome,
                      activate=activate)],
            credential=credential, interface=self.interface)
        self.congruence.record_emitted(self.sim.now, shuttle.structure(),
                                       self.structure())
        return shuttle

    def propagate_function(self, role_id: str, credential=None) -> int:
        """Push a role to every neighbour ship; returns shuttles sent."""
        if role_id not in self.roles:
            return 0
        if credential is None:
            credential = self.default_credential
        sent = 0
        for neighbor in self.neighbors():
            shuttle = self.make_role_shuttle(role_id, neighbor,
                                             credential=credential)
            if self.send_toward(shuttle):
                sent += 1
        return sent

    def __repr__(self) -> str:
        state = "alive" if self.alive else "dead"
        return (f"<Ship {self.ship_id} {state} {self.generation.name} "
                f"active={self.active_role_id} roles={len(self.roles)}>")
