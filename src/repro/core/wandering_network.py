"""The Wandering Network orchestrator (Definition 1).

"A Wandering Network (WN) is a dynamic composite entity realized as a
unity of a closed set of productions of mobile nodes, called ships,
such that through their interactions in composition and decomposition
... at all functional levels they define the network as self-creating."

:class:`WanderingNetwork` assembles every subsystem over a physical
topology — ships with routers, the PMP wandering engine, the resonance
field, the SRP directory/reputation pair, the MFP feedback bus and the
overlay manager — and runs the autopoietic loop: a periodic *pulse*
(metamorphosis) plus periodic self-publication and audits.
"""

from __future__ import annotations

from typing import Any, Dict, Hashable, Iterable, List, Optional, Tuple, Type

from ..analysis import (active_census, role_census, role_entropy,
                        virtual_outstanding_networks)
from ..functions import Role, RoleCatalog, default_catalog
from ..routing import (DistanceVectorRouter, FloodingRouter, OverlayManager,
                       StaticRouter, WLIAdaptiveRouter)
from ..substrates.nodeos import CredentialAuthority
from ..substrates.phys import NetworkFabric, Topology
from ..substrates.sim import Simulator
from .feedback import Dimension, FeedbackBus, FeedbackController
from .generations import Generation
from .metamorphosis import WanderingEngine
from .resonance import ResonanceField
from .selfref import (CommunityDirectory, ReputationSystem, ShipAggregate,
                      clusters_by_function)
from .ship import Ship

NodeId = Hashable


class WanderingNetworkConfig:
    """All the knobs of a Wandering Network in one place."""

    def __init__(self, *,
                 seed: int = 0,
                 generation: Generation = Generation.G4,
                 router: str = "static",
                 pulse_interval: float = 10.0,
                 publish_interval: float = 20.0,
                 resonance_enabled: bool = True,
                 resonance_threshold: float = 3.0,
                 resonance_decay: float = 0.9,
                 morphing_enabled: bool = True,
                 horizontal_wandering: bool = True,
                 vertical_wandering: bool = True,
                 migrate_bias: float = 1.5,
                 settle_threshold: float = 0.5,
                 min_attraction: float = 1.0,
                 max_migrations_per_pulse: int = 4,
                 fact_decay_rate: float = 0.01,
                 knowledge_capacity: int = 512,
                 hello_interval: float = 5.0,
                 loss_rate: float = 0.0,
                 audits_enabled: bool = True,
                 cpu_ops_per_second: float = 1e8,
                 modal_roles: Iterable[Type[Role]] = (),
                 overload_offload: bool = False,
                 cpu_backlog_setpoint: float = 0.05):
        if router not in ("static", "adaptive", "dv", "flooding"):
            raise ValueError(f"unknown router kind {router!r}")
        self.seed = seed
        self.generation = Generation(generation)
        self.router = router
        self.pulse_interval = float(pulse_interval)
        self.publish_interval = float(publish_interval)
        self.resonance_enabled = resonance_enabled
        self.resonance_threshold = float(resonance_threshold)
        self.resonance_decay = float(resonance_decay)
        self.morphing_enabled = morphing_enabled
        self.horizontal_wandering = horizontal_wandering
        self.vertical_wandering = vertical_wandering
        self.migrate_bias = float(migrate_bias)
        self.settle_threshold = float(settle_threshold)
        self.min_attraction = float(min_attraction)
        self.max_migrations_per_pulse = int(max_migrations_per_pulse)
        self.fact_decay_rate = float(fact_decay_rate)
        self.knowledge_capacity = int(knowledge_capacity)
        self.hello_interval = float(hello_interval)
        self.loss_rate = float(loss_rate)
        self.audits_enabled = audits_enabled
        self.cpu_ops_per_second = float(cpu_ops_per_second)
        self.modal_roles = tuple(modal_roles)
        self.overload_offload = overload_offload
        self.cpu_backlog_setpoint = float(cpu_backlog_setpoint)


class WanderingNetwork:
    """One Wandering Network over a physical topology."""

    OPERATOR = "wn-operator"

    def __init__(self, topology: Topology,
                 config: Optional[WanderingNetworkConfig] = None,
                 sim: Optional[Simulator] = None,
                 catalog: Optional[RoleCatalog] = None,
                 fabric_factory: Optional[Any] = None):
        self.config = config or WanderingNetworkConfig()
        self.sim = sim or Simulator(seed=self.config.seed)
        self.topology = topology
        # fabric_factory(sim, topology, loss_rate) lets the shard
        # executor substitute a boundary-aware fabric; everything else
        # about construction stays byte-identical across substitutions.
        make_fabric = fabric_factory or NetworkFabric
        self.fabric = make_fabric(self.sim, topology,
                                  loss_rate=self.config.loss_rate)
        self.catalog = catalog or default_catalog()
        self.authority = CredentialAuthority()
        self.credential = self.authority.issue(self.OPERATOR)

        self._static_router = StaticRouter(topology)
        self.ships: Dict[NodeId, Ship] = {}
        for node in topology.nodes:
            self._spawn_ship(node)

        self.directory = CommunityDirectory(self.sim)
        self.reputation = ReputationSystem(self.sim, self.directory)
        self.aggregates: List[ShipAggregate] = []
        self.feedback = FeedbackBus(self.sim)
        self.overlays = OverlayManager(self.sim, topology)
        for ship in self.ships.values():
            self.overlays.register_ship(ship)

        self.resonance = ResonanceField(
            self.sim, decay=self.config.resonance_decay,
            emergence_threshold=self.config.resonance_threshold) \
            if self.config.resonance_enabled else None
        self.engine = WanderingEngine(
            self.sim, self.ships, self.catalog,
            credential=self.credential,
            resonance=self.resonance,
            migrate_bias=self.config.migrate_bias,
            settle_threshold=self.config.settle_threshold,
            min_attraction=self.config.min_attraction,
            max_migrations_per_pulse=self.config.max_migrations_per_pulse,
            enable_horizontal=self.config.horizontal_wandering,
            enable_vertical=self.config.vertical_wandering,
            excluded=self.reputation.excluded)

        self._pulse_task = self.sim.every(self.config.pulse_interval,
                                          self._on_pulse)
        self._publish_task = self.sim.every(self.config.publish_interval,
                                            self._on_publish)

        # MFP -> PMP coupling: a per-node CPU-backlog controller that
        # offloads an overloaded ship's active function to its least
        # loaded neighbour ("manipulation of the traffic on a
        # per-(active)-node and a per-configuration basis").
        self.offload_events: List[Tuple[float, NodeId, NodeId, str]] = []
        if self.config.overload_offload:
            self.feedback.attach(FeedbackController(
                Dimension.PER_NODE, "cpu-backlog",
                setpoint=self.config.cpu_backlog_setpoint,
                on_high=self._offload_overloaded_ship))

    # -- construction -----------------------------------------------------
    def _make_router(self):
        kind = self.config.router
        if kind == "static":
            return self._static_router
        if kind == "adaptive":
            return WLIAdaptiveRouter(
                self.sim, hello_interval=self.config.hello_interval)
        if kind == "dv":
            return DistanceVectorRouter(
                self.sim, advertise_interval=self.config.hello_interval)
        return FloodingRouter()

    def _spawn_ship(self, node: NodeId, **overrides: Any) -> Ship:
        ship = Ship(self.sim, self.fabric, node,
                    catalog=self.catalog,
                    router=self._make_router(),
                    generation=overrides.get("generation",
                                             self.config.generation),
                    authority=self.authority,
                    morphing_enabled=self.config.morphing_enabled,
                    honest=overrides.get("honest", True),
                    knowledge_capacity=self.config.knowledge_capacity,
                    fact_decay_rate=self.config.fact_decay_rate,
                    cpu_ops_per_second=self.config.cpu_ops_per_second)
        ship.nodeos.security.grant(self.OPERATOR, "*")
        # The network's own operator is not resource-constrained — the
        # quotas exist to contain third-party principals.
        from ..substrates.nodeos import Quota
        ship.nodeos.security.set_quota(self.OPERATOR, Quota(
            cache_bytes=1 << 24, max_ees=256,
            max_spawns_per_window=4096))
        ship.default_credential = self.credential
        for role_cls in self.config.modal_roles:
            ship.acquire_role(role_cls(), modal=True)
        self.ships[node] = ship
        return ship

    def add_ship(self, node: NodeId, **overrides: Any) -> Ship:
        """Node genesis at runtime: a new ship joins the network."""
        if node not in self.topology:
            self.topology.add_node(node)
        ship = self._spawn_ship(node, **overrides)
        self.overlays.register_ship(ship)
        return ship

    # -- autopoietic loop -----------------------------------------------------
    def _on_pulse(self) -> None:
        for ship in self.alive_ships():
            ship.tick_roles()
        self.engine.pulse()
        self.overlays.resync()
        # MFP: per-node workload observations feed the bus each pulse —
        # one vectorized batch update per pulse instead of N scalar
        # calls (falls back to the scalar loop, same order, when
        # batch_delivery is off).
        self.feedback.observe_batch(
            Dimension.PER_NODE, "cpu-backlog",
            [(ship.ship_id, ship.nodeos.cpu.backlog)
             for ship in self.alive_ships()])

    def _offload_overloaded_ship(self, node: NodeId, backlog: float,
                                 setpoint: float) -> None:
        """Replicate the hot ship's active function to the least loaded
        neighbour so traffic can be served closer to its sources."""
        ship = self.ships.get(node)
        if ship is None or not ship.alive:
            return
        role_id = ship.active_role_id
        if role_id is None or role_id == "fn.nextstep":
            return
        candidates = [self.ships[peer] for peer in ship.neighbors()
                      if peer in self.ships and self.ships[peer].alive
                      and not self.ships[peer].has_role(role_id)]
        if not candidates:
            return
        target = min(candidates,
                     key=lambda s: (s.nodeos.cpu.backlog,
                                    repr(s.ship_id)))
        shuttle = ship.make_role_shuttle(role_id, target.ship_id,
                                         credential=self.credential,
                                         activate=True)
        if ship.send_toward(shuttle):
            self.offload_events.append(
                (self.sim.now, node, target.ship_id, role_id))
            self.sim.trace.emit("mfp.offload", frm=node,
                                to=target.ship_id, role=role_id,
                                backlog=round(backlog, 4))

    def _on_publish(self) -> None:
        for ship in self.alive_ships():
            self.directory.publish(ship)
            if self.config.audits_enabled:
                self.reputation.audit(ship)

    def run(self, until: float) -> float:
        return self.sim.run(until=until)

    def shutdown(self) -> None:
        """Stop the autopoietic loop and all per-ship router chatter.

        After shutdown the simulator's agenda drains naturally, so
        ``wn.sim.run()`` without ``until`` terminates — useful when
        embedding a WN inside a larger simulation.
        """
        self._pulse_task.stop()
        self._publish_task.stop()
        for ship in self.ships.values():
            router = ship.router
            if router is not None and hasattr(router, "stop") \
                    and router is not self._static_router:
                router.stop()

    # -- convenience API ---------------------------------------------------
    def ship(self, node: NodeId) -> Ship:
        return self.ships[node]

    def alive_ships(self) -> List[Ship]:
        return [s for s in self.ships.values() if s.alive]

    def deploy_role(self, role_cls: Type[Role], at: NodeId,
                    activate: bool = False, modal: bool = False,
                    **role_kw: Any) -> Role:
        """Operator-initiated role deployment (out-of-band)."""
        ship = self.ships[at]
        role = ship.acquire_role(role_cls(**role_kw), modal=modal)
        if activate:
            ship.assign_role(role.role_id)
        return role

    def community(self) -> List[NodeId]:
        """Ships not excluded by the reputation system (SRP.1)."""
        return self.reputation.community(
            s.ship_id for s in self.alive_ships())

    # -- aggregation (SRP.3) ------------------------------------------------
    def form_aggregate(self, members: Iterable[NodeId],
                       name: Optional[str] = None) -> ShipAggregate:
        """Aggregate named ships into one joint-architecture node."""
        ships = [self.ships[m] for m in members]
        aggregate = ShipAggregate(self.sim, ships, name=name)
        self.aggregates.append(aggregate)
        return aggregate

    def aggregate_function_clusters(self, min_size: int = 2
                                    ) -> List[ShipAggregate]:
        """SRP.2/3: ships performing the same function and physically
        adjacent organize themselves into aggregates."""
        formed: List[ShipAggregate] = []
        for role_id, members in clusters_by_function(
                self.alive_ships()).items():
            if role_id is None or len(members) < min_size:
                continue
            # Split the cluster into connected groups.
            remaining = set(members)
            while remaining:
                seed_node = min(remaining, key=repr)
                group = {seed_node}
                frontier = [seed_node]
                while frontier:
                    node = frontier.pop()
                    for peer in self.topology.neighbors(node):
                        if peer in remaining and peer not in group:
                            group.add(peer)
                            frontier.append(peer)
                remaining -= group
                if len(group) >= min_size:
                    formed.append(self.form_aggregate(
                        sorted(group, key=repr),
                        name=f"{role_id}@{'+'.join(map(str, sorted(group, key=repr)))}"))
        return formed

    # -- figure-level views ----------------------------------------------------
    def role_census(self) -> Dict[str, List[NodeId]]:
        return role_census(self.alive_ships())

    def active_census(self) -> Dict[Optional[str], List[NodeId]]:
        return active_census(self.alive_ships())

    def virtual_networks(self) -> Dict[str, List[NodeId]]:
        """Figure 3's virtual outstanding networks, right now."""
        return virtual_outstanding_networks(self.alive_ships())

    def role_entropy(self) -> float:
        return role_entropy(self.alive_ships())

    def snapshot(self) -> Dict[str, Any]:
        """One Figure 1 frame: who does what, with what knowledge."""
        return {
            "time": self.sim.now,
            "ships": {
                s.ship_id: {
                    "class": s.ship_class,
                    "active": s.active_role_id,
                    "roles": sorted(s.roles),
                    "facts": len(s.knowledge),
                }
                for s in self.alive_ships()
            },
            "virtual_networks": self.virtual_networks(),
            "entropy": self.role_entropy(),
            "overlays": self.overlays.snapshot(),
        }

    def __repr__(self) -> str:
        return (f"<WanderingNetwork ships={len(self.ships)} "
                f"t={self.sim.now:.6g} pulses={self.engine.pulses}>")
