"""The Pulsating Metamorphosis Principle (PMP) engine.

Definition 3.1: "There are two types of moving network functionality
from the center to the periphery and vice versa inside a Wandering
Network referred to as pulsating metamorphosis: *horizontal*, or
inter-node, and *vertical*, or intra-node, transition."

The :class:`WanderingEngine` drives both on a periodic *pulse*:

* **fact lifetime** — sweep each ship's knowledge base; functions whose
  supporting facts died are released (PMP.3: function lifetime follows
  fact lifetime);
* **vertical transition** — consume the Next-Step switch: the stored
  role becomes the ship's active function (Figure 4's in-pulsing);
* **network resonance** — functions self-emerge on ships whose live
  knowledge resonates with them (PMP.4);
* **horizontal transition** — functions wander between ships toward the
  knowledge (demand) that sustains them, by emitting role shuttles
  (Figure 3's ex-pulsing); a function whose local support collapsed
  *moves* (released at the origin), otherwise it *replicates*.

Every event is recorded, "creating a valuable statistics about the
frequency of usage of wandering functions in the network".
"""

from __future__ import annotations

from typing import Dict, Hashable, List, NamedTuple, Optional, Tuple

from ..functions import DelegationRole, NextStepRole
from ..obs import TRACE_META_KEY
from .generations import Capability, supports
from .resonance import ResonanceField

NodeId = Hashable


class WanderEvent(NamedTuple):
    time: float
    kind: str          # "migrate" / "replicate" / "emerge" / "die" / "switch"
    role_id: str
    src: Optional[NodeId]
    dst: Optional[NodeId]


class PulseReport(NamedTuple):
    time: float
    facts_evicted: int
    functions_died: int
    vertical_switches: int
    migrations: int
    replications: int
    emergences: int


class WanderingEngine:
    """Drives horizontal and vertical functional wandering."""

    def __init__(self, sim, ships: Dict[NodeId, object], catalog,
                 credential=None,
                 resonance: Optional[ResonanceField] = None,
                 migrate_bias: float = 1.5,
                 settle_threshold: float = 0.5,
                 min_attraction: float = 1.0,
                 max_migrations_per_pulse: int = 4,
                 enable_horizontal: bool = True,
                 enable_vertical: bool = True,
                 excluded=None):
        if migrate_bias < 1.0:
            raise ValueError("migrate_bias must be >= 1.0")
        self.sim = sim
        self.ships = ships
        self.catalog = catalog
        self.credential = credential
        self.resonance = resonance
        self.migrate_bias = float(migrate_bias)
        self.settle_threshold = float(settle_threshold)
        self.min_attraction = float(min_attraction)
        self.max_migrations_per_pulse = int(max_migrations_per_pulse)
        self.enable_horizontal = enable_horizontal
        self.enable_vertical = enable_vertical
        #: SRP.1 hook: ``excluded(node_id) -> bool``.  Ships excluded
        #: from the community ("otherwise they [are] excluded") never
        #: receive wandering functions.
        self.excluded = excluded or (lambda node: False)
        self.events: List[WanderEvent] = []
        self.pulses = 0
        self.reports: List[PulseReport] = []

    # -- helpers ------------------------------------------------------------
    def _alive_ships(self) -> List:
        return [s for s in self.ships.values() if s.alive]

    def _record_event(self, kind: str, role_id: str,
                      src: Optional[NodeId], dst: Optional[NodeId]) -> None:
        """Append one wander event and mirror it into the obs registry
        (per-configuration dimension)."""
        self.events.append(WanderEvent(self.sim.now, kind, role_id,
                                       src, dst))
        obs = self.sim.obs
        if obs.on:
            obs.wander_events.inc(kind=kind, role=role_id)

    def attraction(self, ship, role_cls) -> float:
        """Demand for a role at a ship: live weight of its fact classes."""
        now = self.sim.now
        return sum(ship.knowledge.class_weight(cls, now)
                   for cls in role_cls.supporting_fact_classes)

    # -- the pulse ------------------------------------------------------------
    def pulse(self) -> PulseReport:
        now = self.sim.now
        facts_evicted = 0
        functions_died = 0
        switches = 0
        emergences = 0

        for ship in self._alive_ships():
            # 1. Fact lifetime (PMP.3).
            facts_evicted += len(ship.knowledge.sweep(now))
            # 2. Function death follows fact death.
            functions_died += self._expire_functions(ship)
            # 3. Vertical transition: the Next-Step switch.
            if self.enable_vertical:
                switches += self._vertical_step(ship)

        # 4. Network resonance (PMP.4).
        if self.resonance is not None:
            self.resonance.observe(self._alive_ships())
            emergences = self._resonance_step()

        # 5. Horizontal wandering.
        migrations = replications = 0
        if self.enable_horizontal:
            migrations, replications = self._horizontal_step()

        self.pulses += 1
        report = PulseReport(now, facts_evicted, functions_died, switches,
                             migrations, replications, emergences)
        self.reports.append(report)
        self.sim.trace.emit("pmp.pulse", **report._asdict())
        return report

    # -- stage implementations ------------------------------------------------
    def _expire_functions(self, ship) -> int:
        died = 0
        for role_id in ship.expired_functions():
            meta = ship.roles[role_id]
            if meta["modal"] or role_id == NextStepRole.role_id:
                continue  # resident default services do not fact-expire
            role = meta["role"]
            if role.packets_handled == 0 and role.packets_seen == 0:
                # Grace for never-exercised functions freshly deployed.
                continue
            ship.release_role(role_id)
            died += 1
            self._record_event("die", role_id, ship.ship_id, None)
        return died

    def _vertical_step(self, ship) -> int:
        next_role = ship.next_step.take_next()
        if next_role is None:
            # Contribution 1 (Role Change): functionality "resident on
            # the node and waiting to be activated" starts performing
            # when local demand supports it and the ship is idle.
            if ship.active_role_id is not None:
                return 0
            best, best_attraction = None, self.min_attraction
            for role_id in sorted(ship.roles):
                meta = ship.roles[role_id]
                if role_id == NextStepRole.role_id:
                    continue
                attraction = self.attraction(ship, type(meta["role"]))
                if attraction > best_attraction:
                    best, best_attraction = role_id, attraction
            if best is None:
                return 0
            next_role = best
        if not ship.has_role(next_role):
            if next_role not in self.catalog:
                return 0
            ship.acquire_role(self.catalog.create(next_role))
        ship.assign_role(next_role)
        self._record_event("switch", next_role, ship.ship_id, ship.ship_id)
        return 1

    def _resonance_step(self) -> int:
        emerged = 0
        for ship in self._alive_ships():
            # Self-creation is the defining 4G capability.
            if not supports(ship.generation, Capability.SELF_DISTRIBUTION):
                continue
            for function_id, score in self.resonance.emergent_candidates(
                    ship, self.catalog):
                ship.acquire_role(self.catalog.create(function_id))
                # An idle ship starts performing the function that
                # emerged on it (the Figure 1 specialization story).
                if ship.active_role_id is None:
                    ship.assign_role(function_id)
                self.resonance.record_emergence(ship.ship_id, function_id,
                                                score)
                self._record_event("emerge", function_id, None,
                                   ship.ship_id)
                emerged += 1
        return emerged

    def _horizontal_step(self) -> Tuple[int, int]:
        migrations = replications = 0
        budget = self.max_migrations_per_pulse
        for ship in self._alive_ships():
            if budget <= 0:
                break
            # Autonomous role wandering is a 4G capability.
            if not supports(ship.generation, Capability.ROLE_WANDERING):
                continue
            for role_id in sorted(ship.roles):
                if budget <= 0:
                    break
                meta = ship.roles[role_id]
                if role_id == NextStepRole.role_id or meta["modal"]:
                    continue
                moved = self._consider_wandering(ship, role_id, meta)
                if moved == "migrate":
                    migrations += 1
                    budget -= 1
                elif moved == "replicate":
                    replications += 1
                    budget -= 1
        return migrations, replications

    def _consider_wandering(self, ship, role_id: str,
                            meta) -> Optional[str]:
        role_cls = type(meta["role"])
        local = self.attraction(ship, role_cls)
        target, forced_move = self._pick_target(ship, role_id, role_cls,
                                                local)
        if target is None:
            return None
        # Collapsed local support means the function *moves* (and keeps
        # running at its new host); otherwise it replicates, arriving
        # resident for the target's own vertical engine to activate.
        # A delegate following its user always moves — being closer
        # strictly dominates staying.
        migrating = forced_move or local < self.settle_threshold
        was_active = ship.active_role_id == role_id
        shuttle = ship.make_role_shuttle(
            role_id, target, credential=self.credential,
            activate=migrating and was_active)
        obs = self.sim.obs
        if obs.on:
            # Name the causal root after the metamorphosis it carries,
            # so the span tree reads "wander:migrate:fn.caching" rather
            # than an anonymous shuttle id.
            kind = "migrate" if migrating else "replicate"
            root = obs.tracer.start_trace(f"wander:{kind}:{role_id}",
                                          ship.ship_id, self.sim.now)
            root.attrs.update(role=role_id, src=ship.ship_id, dst=target)
            shuttle.meta[TRACE_META_KEY] = root.context
        if not ship.send_toward(shuttle):
            return None
        if migrating:
            ship.release_role(role_id)
            self._record_event("migrate", role_id, ship.ship_id, target)
            return "migrate"
        self._record_event("replicate", role_id, ship.ship_id, target)
        return "replicate"

    def _pick_target(self, ship, role_id: str, role_cls,
                     local: float) -> Tuple[Optional[NodeId], bool]:
        """Where should this role wander?  Returns (target, forced_move)."""
        # Delegation follows its users: migrate toward the dominant
        # task origin (the nomadic-service example of Section D).
        if role_id == DelegationRole.role_id:
            origin = ship.roles[role_id]["role"].dominant_origin()
            if origin is not None and origin != ship.ship_id:
                neighbor = self._neighbor_toward(ship, origin)
                if neighbor is not None:
                    target_ship = self.ships.get(neighbor)
                    if (target_ship is not None and target_ship.alive
                            and not self.excluded(neighbor)
                            and not target_ship.has_role(role_id)):
                        return neighbor, True
        best_target, best_attraction = None, max(
            local * self.migrate_bias, self.min_attraction)
        for neighbor in sorted(ship.neighbors(), key=repr):
            other = self.ships.get(neighbor)
            if other is None or not other.alive or other.has_role(role_id):
                continue
            if self.excluded(neighbor):
                continue
            attraction = self.attraction(other, role_cls)
            if attraction > best_attraction:
                best_target, best_attraction = neighbor, attraction
        return best_target, False

    def _neighbor_toward(self, ship, destination: NodeId) -> Optional[NodeId]:
        if destination in ship.neighbors():
            return destination
        path = ship.fabric.topology.path(ship.ship_id, destination,
                                         weight="hops")
        if path is not None and len(path) > 1:
            return path[1]
        return None

    # -- statistics (Section E: wandering-function usage) -----------------------
    def usage_statistics(self) -> Dict[str, Dict[str, int]]:
        """Per-role counts of each wandering event kind."""
        stats: Dict[str, Dict[str, int]] = {}
        for event in self.events:
            per_role = stats.setdefault(event.role_id, {})
            per_role[event.kind] = per_role.get(event.kind, 0) + 1
        return stats

    def events_of_kind(self, kind: str) -> List[WanderEvent]:
        return [e for e in self.events if e.kind == kind]

    def __repr__(self) -> str:
        return (f"<WanderingEngine pulses={self.pulses} "
                f"events={len(self.events)}>")
