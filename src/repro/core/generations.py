"""The four generations of Wandering Networks (Section B).

* **1G** — "most of the traditional active network approaches as known
  to be programmable at the highest execution environment layer"
  (ANTS-class systems).
* **2G** — "programmability at both execution environment (EE) and node
  operating system (NodeOS) layer" (ANON, Tempest, Genesis).
* **3G** — "programmability at the last layer of networking, an active
  node's hardware and switching circuitry" (no 2002 system qualified).
* **4G** — "characterized by adaptive self-distribution and
  replication" — the Viator approach itself.

Each generation is a capability set enforced by the ship's shuttle
interpreter; the generation ladder benchmark sweeps them.
"""

from __future__ import annotations

from enum import IntEnum
from typing import FrozenSet


class Generation(IntEnum):
    G1 = 1
    G2 = 2
    G3 = 3
    G4 = 4


class Capability:
    EE_PROGRAMMING = "ee-programming"        # install/run EE code
    NODEOS_PROGRAMMING = "nodeos-programming"  # drivers, EE layout changes
    HW_RECONFIGURATION = "hw-reconfiguration"  # bitstreams, netbot docking
    SELF_DISTRIBUTION = "self-distribution"    # jets, genome transcription
    ROLE_WANDERING = "role-wandering"          # autonomous role migration


_CAPABILITIES = {
    Generation.G1: frozenset({Capability.EE_PROGRAMMING}),
    Generation.G2: frozenset({Capability.EE_PROGRAMMING,
                              Capability.NODEOS_PROGRAMMING}),
    Generation.G3: frozenset({Capability.EE_PROGRAMMING,
                              Capability.NODEOS_PROGRAMMING,
                              Capability.HW_RECONFIGURATION}),
    Generation.G4: frozenset({Capability.EE_PROGRAMMING,
                              Capability.NODEOS_PROGRAMMING,
                              Capability.HW_RECONFIGURATION,
                              Capability.SELF_DISTRIBUTION,
                              Capability.ROLE_WANDERING}),
}


def capabilities(generation: Generation) -> FrozenSet[str]:
    return _CAPABILITIES[Generation(generation)]


def supports(generation: Generation, capability: str) -> bool:
    return capability in _CAPABILITIES[Generation(generation)]


def classify(*, ee_programmable: bool = False,
             nodeos_programmable: bool = False,
             hw_reconfigurable: bool = False,
             self_distributing: bool = False) -> Generation:
    """Classify a system into the WN generation ladder (Section B)."""
    if self_distributing:
        return Generation.G4
    if hw_reconfigurable:
        return Generation.G3
    if nodeos_programmable:
        return Generation.G2
    if ee_programmable:
        return Generation.G1
    raise ValueError("not an active network: no programmability at all")
