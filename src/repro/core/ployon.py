"""Ployons: the dual active-component abstraction (DCP, principle 1).

"The Wandering Logic model is based on: a) the dual nature of the
*ployons*, the active [mobile] network component abstractions in their
two manifestations, ships (active mobile nodes) and shuttles (active
gene-coded packets), and b) on their congruence."

Every ployon exposes a :meth:`Ployon.structure` descriptor — the common
structural language in which the Dualistic Congruence Principle compares
a ship's architecture with a shuttle's structure.
"""

from __future__ import annotations

import itertools
from typing import Any, Dict

# fork-inherited id sequence: every shard replays the same
# construction order, so per-process copies advance identically
# (see shard/recovery.py)  # via: ignore[VIA013]
_ployon_ids = itertools.count(1)


class Manifestation:
    SHIP = "ship"
    SHUTTLE = "shuttle"


class Ployon:
    """Base of both manifestations of the WLI component abstraction.

    ``__slots__`` is deliberately empty: ``Shuttle`` inherits from both
    :class:`~repro.substrates.phys.packet.Datagram` and ``Ployon``, and
    Python forbids multiple bases with nonempty slot layouts.  The
    ``ployon_id`` slot therefore lives in each slotted subclass (Shuttle
    declares it; Ship keeps an ordinary ``__dict__``).  Without this
    empty declaration every Shuttle silently grew a ``__dict__`` and
    Jet's own ``__slots__`` was a no-op.
    """

    manifestation: str = "ployon"

    __slots__ = ()

    def __init__(self):
        self.ployon_id = next(_ployon_ids)

    def structure(self) -> Dict[str, Any]:
        """A structural descriptor in the shared ployon vocabulary.

        Keys used by the congruence measure:

        * ``functions`` — role/code ids present (sorted tuple);
        * ``hardware`` — hardware function ids (sorted tuple);
        * ``knowledge`` — fact classes represented (sorted tuple);
        * ``interface`` — the encoding/protocol surface (sorted tuple).
        """
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"<{type(self).__name__} ployon#{self.ployon_id}>"
