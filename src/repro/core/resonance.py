"""Network resonance (PMP.4) — functions emerging by structural coupling.

"A net function can emerge on its own (the autopoiesis principle) by
getting in touch with other net functions (i.e. states and net
constellations), facts, user interactions or other transmitted
information.  This new property of the network is called *network
resonance*. ... clusters and constellations of network elements or
their functions can be (self-)correlated, i.e. structurally coupled,
and/or (self-)organized in groups, classes and patterns and stored in
the cache of the single nodes/ships or in the (centralized) long term
memory of the network."

Implementation: a decaying co-occurrence matrix R[function, fact_class]
accumulated by observing all ships (the network's "long term memory").
A function *resonates* with a ship when the ship's live fact classes
couple strongly with the function across the network; crossing the
emergence threshold self-instantiates the function there.  The matrix
is numpy-backed — the observe sweep is the hot path of the autopoietic
pulse.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, List, Tuple

import numpy as np


class ResonanceField:
    """The network's long-term structural-coupling memory."""

    def __init__(self, sim, decay: float = 0.9,
                 emergence_threshold: float = 3.0,
                 max_emergent_per_pulse: int = 1):
        if not (0.0 < decay <= 1.0):
            raise ValueError(f"decay out of (0,1]: {decay}")
        if emergence_threshold <= 0:
            raise ValueError("emergence threshold must be positive")
        self.sim = sim
        self.decay = float(decay)
        self.emergence_threshold = float(emergence_threshold)
        self.max_emergent_per_pulse = int(max_emergent_per_pulse)
        self._functions: Dict[str, int] = {}
        self._classes: Dict[str, int] = {}
        self._matrix = np.zeros((0, 0))
        self.observations = 0
        self.emergences = 0

    # -- index management -----------------------------------------------------
    def _function_index(self, function_id: str) -> int:
        idx = self._functions.get(function_id)
        if idx is None:
            idx = len(self._functions)
            self._functions[function_id] = idx
            self._matrix = np.pad(self._matrix, ((0, 1), (0, 0)))
        return idx

    def _class_index(self, fact_class: str) -> int:
        idx = self._classes.get(fact_class)
        if idx is None:
            idx = len(self._classes)
            self._classes[fact_class] = idx
            self._matrix = np.pad(self._matrix, ((0, 0), (0, 1)))
        return idx

    @property
    def shape(self) -> Tuple[int, int]:
        return self._matrix.shape

    def coupling(self, function_id: str, fact_class: str) -> float:
        fi = self._functions.get(function_id)
        ci = self._classes.get(fact_class)
        if fi is None or ci is None:
            return 0.0
        return float(self._matrix[fi, ci])

    # -- observation sweep ------------------------------------------------------
    def observe(self, ships: Iterable) -> None:
        """One autopoietic pulse of structural-coupling accumulation.

        For every alive ship, each (held function, live fact class)
        pair is strengthened by the class's current weight; the whole
        matrix decays first so stale couplings fade.
        """
        self._matrix *= self.decay
        now = self.sim.now
        for ship in ships:
            if not ship.alive:
                continue
            classes = [(cls, ship.knowledge.class_weight(cls, now))
                       for cls in ship.knowledge.classes()]
            classes = [(cls, w) for cls, w in classes if w > 0.0]
            if not classes:
                continue
            for role_id in ship.roles:
                fi = self._function_index(role_id)
                for cls, weight in classes:
                    ci = self._class_index(cls)
                    self._matrix[fi, ci] += min(weight, 4.0)
        self.observations += 1

    # -- emergence ------------------------------------------------------------
    def resonance_with(self, ship, function_id: str) -> float:
        """How strongly a function resonates with one ship's knowledge."""
        fi = self._functions.get(function_id)
        if fi is None:
            return 0.0
        now = self.sim.now
        total = 0.0
        for cls in ship.knowledge.classes():
            ci = self._classes.get(cls)
            if ci is None:
                continue
            weight = ship.knowledge.class_weight(cls, now)
            if weight <= 0.0:
                continue
            total += float(self._matrix[fi, ci]) * min(weight, 4.0)
        return total

    def emergent_candidates(self, ship,
                            catalog) -> List[Tuple[str, float]]:
        """Functions that should self-emerge on this ship (PMP.4).

        Candidates are catalog functions the ship does not hold whose
        resonance with the ship's live knowledge crosses the threshold,
        strongest first, capped at ``max_emergent_per_pulse``.
        """
        scored = []
        for function_id in self._functions:
            if ship.has_role(function_id) or function_id not in catalog:
                continue
            score = self.resonance_with(ship, function_id)
            if score >= self.emergence_threshold:
                scored.append((function_id, score))
        scored.sort(key=lambda fs: (-fs[1], fs[0]))
        return scored[: self.max_emergent_per_pulse]

    def record_emergence(self, ship_id: Hashable, function_id: str,
                         score: float) -> None:
        self.emergences += 1
        self.sim.trace.emit("resonance.emerge", ship=ship_id,
                            fn=function_id, score=round(score, 3))

    def strongest_couplings(self, top: int = 10) -> List[Tuple[str, str, float]]:
        """The network's dominant (function, fact-class) patterns."""
        pairs = []
        inv_fn = {i: f for f, i in self._functions.items()}
        inv_cls = {i: c for c, i in self._classes.items()}
        fi, ci = np.nonzero(self._matrix)
        for f, c in zip(fi.tolist(), ci.tolist()):
            pairs.append((inv_fn[f], inv_cls[c],
                          float(self._matrix[f, c])))
        pairs.sort(key=lambda p: (-p[2], p[0], p[1]))
        return pairs[:top]

    def __repr__(self) -> str:
        return (f"<ResonanceField {self.shape[0]}fn x {self.shape[1]}cls "
                f"emergences={self.emergences}>")
