"""Knowledge quanta, facts and net functions (PMP definitions 3.2-3.3).

The Pulsating Metamorphosis Principle postulates:

* "A net function can be based on one or more facts (events,
  experiences).  The combination of net function and facts is called a
  *knowledge quantum* (kq)."
* "Facts have a certain lifetime ... which depends on their clustering
  inside the ships (knowledge base), as well as from their transmission
  intensity, or bandwidth ('weight').  As soon as a fact does not reach
  its frequency threshold, it is deleted to leave space for new facts."
* "Since net functions are based on facts, their lifetime ... depends on
  the facts. ... The lifetime of a knowledge quantum is defined by the
  lifetime of its network function."

This module gives those sentences executable semantics: a fact's weight
is an exponentially-decayed access frequency; a knowledge base sweeps
below-threshold facts; a net function is alive while any supporting fact
class is alive.
"""

from __future__ import annotations

import hashlib
import itertools
import json
import math
from typing import Any, Dict, Hashable, Iterable, List, Optional, Tuple

import numpy as np

from ..perf.switches import switches as _opt

#: Below this many facts the vectorized sweep costs more than the
#: scalar pass it replaces.
_SWEEP_BATCH_MIN = 32

# fork-inherited id sequence: every shard replays the same
# construction order, so per-process copies advance identically
# (see shard/recovery.py)  # via: ignore[VIA013]
_fact_ids = itertools.count(1)
# fork-inherited id sequence: every shard replays the same
# construction order, so per-process copies advance identically
# (see shard/recovery.py)  # via: ignore[VIA013]
_kq_ids = itertools.count(1)

#: Default decay rate: weight halves roughly every 70 seconds.
DEFAULT_DECAY_RATE = 0.01
#: Default frequency threshold below which a fact is evicted.
DEFAULT_THRESHOLD = 0.2
#: Weight saturation: the paper's "weight" is a transmission *intensity*
#: (a rate), so confirmations saturate instead of accumulating without
#: bound — otherwise one busy hour would pin a fact for a week.
MAX_WEIGHT = 8.0


class Fact:
    """One event/experience recorded by a ship.

    ``fact_class`` is the clustering key (e.g. ``"link-state"``,
    ``"content-request"``, ``"role-usage"``); ``value`` is the payload.
    ``weight`` is the paper's "transmission intensity, or bandwidth":
    it decays exponentially and is bumped on every access/confirmation.
    """

    __slots__ = ("fact_id", "fact_class", "value", "created_at", "source",
                 "threshold", "_weight", "_weight_time", "accesses")

    def __init__(self, fact_class: str, value: Any, created_at: float = 0.0,
                 source: Optional[Hashable] = None,
                 weight: float = 1.0,
                 threshold: float = DEFAULT_THRESHOLD):
        if weight <= 0:
            raise ValueError(f"non-positive initial weight {weight}")
        if threshold < 0:
            raise ValueError(f"negative threshold {threshold}")
        self.fact_id = next(_fact_ids)
        self.fact_class = fact_class
        self.value = value
        self.created_at = float(created_at)
        self.source = source
        self.threshold = float(threshold)
        self._weight = float(weight)
        self._weight_time = float(created_at)
        self.accesses = 0

    def weight(self, now: float, decay_rate: float = DEFAULT_DECAY_RATE) -> float:
        """Current decayed weight."""
        dt = max(0.0, now - self._weight_time)
        return self._weight * math.exp(-decay_rate * dt)

    def touch(self, now: float, boost: float = 1.0,
              decay_rate: float = DEFAULT_DECAY_RATE) -> float:
        """Record an access/confirmation; returns the new weight.

        Weight saturates at :data:`MAX_WEIGHT` — it models intensity,
        not a lifetime counter.
        """
        self._weight = min(MAX_WEIGHT,
                           self.weight(now, decay_rate) + boost)
        self._weight_time = now
        self.accesses += 1
        return self._weight

    def alive(self, now: float, decay_rate: float = DEFAULT_DECAY_RATE) -> bool:
        return self.weight(now, decay_rate) >= self.threshold

    def expiry_time(self, decay_rate: float = DEFAULT_DECAY_RATE) -> float:
        """The time at which the weight crosses the threshold."""
        if self.threshold <= 0:
            return float("inf")
        if self._weight <= self.threshold:
            return self._weight_time
        return self._weight_time + math.log(
            self._weight / self.threshold) / decay_rate

    def snapshot(self, now: float) -> Dict[str, Any]:
        """Serializable summary (what genetic transcoding ships around)."""
        return {"fact_class": self.fact_class, "value": self.value,
                "weight": self.weight(now), "source": self.source}

    def __repr__(self) -> str:
        return (f"<Fact #{self.fact_id} {self.fact_class} "
                f"value={self.value!r}>")


class NetFunction:
    """A network function and the fact classes that keep it alive.

    "Which facts determine the presence of a particular function inside
    the Wandering Network is defined individually for each function."
    """

    __slots__ = ("function_id", "supporting_classes", "min_support_weight")

    def __init__(self, function_id: str,
                 supporting_classes: Iterable[str],
                 min_support_weight: float = DEFAULT_THRESHOLD):
        self.function_id = function_id
        self.supporting_classes: Tuple[str, ...] = tuple(supporting_classes)
        self.min_support_weight = float(min_support_weight)

    def alive(self, kb: "KnowledgeBase", now: float) -> bool:
        """A function lives while any supporting fact class carries weight."""
        if not self.supporting_classes:
            return True  # unconditioned functions never fact-expire
        return any(
            kb.class_weight(cls, now) >= self.min_support_weight
            for cls in self.supporting_classes)

    def __repr__(self) -> str:
        return (f"<NetFunction {self.function_id} "
                f"supports={list(self.supporting_classes)}>")


class KnowledgeQuantum:
    """A transportable (function, facts) capsule — the PMP's ``kq``.

    Knowledge quanta are "a new type of capsules which are distributed
    via shuttles"; their lifetime equals their function's lifetime.
    """

    __slots__ = ("kq_id", "function_id", "fact_snapshots", "origin",
                 "created_at", "generation")

    def __init__(self, function_id: str,
                 fact_snapshots: List[Dict[str, Any]],
                 origin: Optional[Hashable] = None,
                 created_at: float = 0.0, generation: int = 0):
        self.kq_id = next(_kq_ids)
        self.function_id = function_id
        self.fact_snapshots = list(fact_snapshots)
        self.origin = origin
        self.created_at = float(created_at)
        #: How many ship-to-ship transfers this kq has survived.
        self.generation = int(generation)

    @property
    def size_bytes(self) -> int:
        """Wire size: a compact record per fact plus a function header."""
        return 64 + 48 * len(self.fact_snapshots)

    def aged(self) -> "KnowledgeQuantum":
        """A copy as re-emitted by a relaying ship."""
        return KnowledgeQuantum(self.function_id, self.fact_snapshots,
                                self.origin, self.created_at,
                                self.generation + 1)

    def __repr__(self) -> str:
        return (f"<kq #{self.kq_id} fn={self.function_id} "
                f"facts={len(self.fact_snapshots)} gen={self.generation}>")


class KnowledgeBase:
    """A ship's fact store with frequency-threshold eviction.

    Facts cluster by ``fact_class``; the class weight (sum of member
    weights) is what keeps the class's dependent functions alive.
    ``capacity`` bounds the store — when full, the lowest-weight fact is
    displaced ("deleted to leave space for new facts").
    """

    def __init__(self, capacity: int = 512,
                 decay_rate: float = DEFAULT_DECAY_RATE):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        if decay_rate <= 0:
            raise ValueError(f"decay rate must be positive: {decay_rate}")
        self.capacity = int(capacity)
        self.decay_rate = float(decay_rate)
        self._facts: Dict[int, Fact] = {}
        self._by_class: Dict[str, List[int]] = {}
        self.evictions = 0
        self.inserts = 0
        # content_digest() cache: valid while the *membership* of the
        # store is unchanged (weight touches don't enter the digest).
        self._digest: Optional[str] = None
        self._digest_dirty = True
        self.digest_hits = 0

    def __len__(self) -> int:
        return len(self._facts)

    def __contains__(self, fact_id: int) -> bool:
        return fact_id in self._facts

    # -- insertion ----------------------------------------------------------
    def record(self, fact: Fact, now: float) -> Fact:
        """Insert a fact, displacing the weakest if at capacity.

        If an equal (class, value) fact already exists it is *touched*
        instead — repetition is confirmation, not duplication.
        """
        existing = self.find(fact.fact_class, fact.value)
        if existing is not None:
            existing.touch(now, decay_rate=self.decay_rate)
            return existing
        if len(self._facts) >= self.capacity:
            self._displace_weakest(now)
        self._facts[fact.fact_id] = fact
        self._by_class.setdefault(fact.fact_class, []).append(fact.fact_id)
        self.inserts += 1
        self._digest_dirty = True
        return fact

    def _displace_weakest(self, now: float) -> None:
        victim = min(self._facts.values(),
                     key=lambda f: (f.weight(now, self.decay_rate), f.fact_id))
        self._remove(victim)
        self.evictions += 1

    def _remove(self, fact: Fact) -> None:
        del self._facts[fact.fact_id]
        self._digest_dirty = True
        members = self._by_class.get(fact.fact_class, [])
        try:
            members.remove(fact.fact_id)
        except ValueError:
            pass
        if not members:
            self._by_class.pop(fact.fact_class, None)

    # -- queries --------------------------------------------------------------
    def find(self, fact_class: str, value: Any) -> Optional[Fact]:
        for fid in self._by_class.get(fact_class, ()):
            fact = self._facts[fid]
            if fact.value == value:
                return fact
        return None

    def facts_of_class(self, fact_class: str) -> List[Fact]:
        return [self._facts[fid]
                for fid in self._by_class.get(fact_class, ())]

    def all_facts(self) -> List[Fact]:
        return list(self._facts.values())

    def classes(self) -> List[str]:
        return list(self._by_class)

    def class_weight(self, fact_class: str, now: float) -> float:
        return sum(f.weight(now, self.decay_rate)
                   for f in self.facts_of_class(fact_class))

    # -- lifetime ------------------------------------------------------------
    def sweep(self, now: float) -> List[Fact]:
        """Evict every fact below its frequency threshold; returns them."""
        if _opt.batch_delivery and len(self._facts) >= _SWEEP_BATCH_MIN:
            dead = self._sweep_dead_vector(now)
        else:
            dead = [f for f in self._facts.values()
                    if not f.alive(now, self.decay_rate)]
        for fact in dead:
            self._remove(fact)
        self.evictions += len(dead)
        return dead

    def _sweep_dead_vector(self, now: float) -> List[Fact]:
        """Vectorized liveness screen for :meth:`sweep`.

        ``np.exp`` may differ from ``math.exp`` by a couple of ulp, so
        the vector pass only *classifies* facts whose decayed weight
        clears the threshold by a safety margin far above that error;
        the borderline band re-runs the scalar :meth:`Fact.alive`
        oracle.  Eviction membership and order are therefore
        bit-identical to the reference sweep.
        """
        facts = list(self._facts.values())
        n = len(facts)
        rate = self.decay_rate
        w0 = np.fromiter((f._weight for f in facts),
                         dtype=np.float64, count=n)
        t0 = np.fromiter((f._weight_time for f in facts),
                         dtype=np.float64, count=n)
        thr = np.fromiter((f.threshold for f in facts),
                          dtype=np.float64, count=n)
        dt = now - t0
        np.maximum(dt, 0.0, out=dt)
        weight = w0 * np.exp(-rate * dt)
        # Margin ~1e4 x the worst relative ulp drift of np.exp.
        margin = 8e-12 * np.maximum(weight, thr)
        surely_dead = weight < thr - margin
        surely_alive = weight > thr + margin
        dead: List[Fact] = []
        for i in np.flatnonzero(~surely_alive).tolist():
            if surely_dead[i] or not facts[i].alive(now, rate):
                dead.append(facts[i])
        return dead

    def touch_class(self, fact_class: str, now: float,
                    boost: float = 1.0) -> int:
        """Confirm every fact of a class (e.g. the class was transmitted)."""
        facts = self.facts_of_class(fact_class)
        for fact in facts:
            fact.touch(now, boost, self.decay_rate)
        return len(facts)

    # -- content digest -------------------------------------------------------
    def content_digest(self) -> str:
        """Deterministic fingerprint of the store's membership.

        Covers the sorted multiset of ``(fact_class, value, source)``
        triples — the cross-run-comparable content.  Deliberately
        excludes fact ids (drawn from a process-global counter) and
        decayed weights (functions of the query time), so two same-seed
        runs agree and the digest is stable between membership changes.

        The canonical-JSON/sha256 encoding is recomputed only when a
        fact was inserted or removed since the last call
        (``perf.switches.digest_cache``); weight touches preserve
        membership and correctly reuse the cache.
        """
        if _opt.digest_cache and not self._digest_dirty \
                and self._digest is not None:
            self.digest_hits += 1
            return self._digest
        content = sorted((fact.fact_class, repr(fact.value),
                          repr(fact.source))
                         for fact in self._facts.values())
        payload = json.dumps(content, sort_keys=True, default=repr)
        digest = hashlib.sha256(payload.encode()).hexdigest()[:16]
        self._digest = digest
        self._digest_dirty = False
        return digest

    # -- knowledge quanta -----------------------------------------------------
    def make_quantum(self, function: NetFunction, now: float,
                     origin: Optional[Hashable] = None,
                     max_facts: int = 16) -> KnowledgeQuantum:
        """Package a function with its strongest supporting facts."""
        supporting: List[Fact] = []
        for cls in function.supporting_classes:
            supporting.extend(self.facts_of_class(cls))
        supporting.sort(key=lambda f: f.weight(now, self.decay_rate),
                        reverse=True)
        snaps = [f.snapshot(now) for f in supporting[:max_facts]]
        return KnowledgeQuantum(function.function_id, snaps, origin=origin,
                                created_at=now)

    def absorb_quantum(self, kq: KnowledgeQuantum, now: float) -> int:
        """Integrate a received kq's facts; returns facts recorded.

        Received weights are honoured (transmission intensity counts
        toward a fact's bandwidth), capped at the local insert boost.
        """
        count = 0
        for snap in kq.fact_snapshots:
            fact = Fact(snap["fact_class"], snap["value"], created_at=now,
                        source=snap.get("source"),
                        weight=max(0.1, min(snap.get("weight", 1.0), 4.0)))
            self.record(fact, now)
            count += 1
        return count

    def __repr__(self) -> str:
        return (f"<KnowledgeBase facts={len(self._facts)}/{self.capacity} "
                f"classes={len(self._by_class)}>")
