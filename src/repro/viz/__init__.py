"""ASCII visualisation of snapshots, timelines and overlays."""

from .ascii_art import (ROLE_GLYPHS, glyph, render_overlays,
                        render_snapshot, render_topology,
                        render_resonance,
                        render_wandering_timeline, sparkline)

__all__ = ["ROLE_GLYPHS", "glyph", "render_overlays", "render_snapshot",
           "render_resonance", "render_topology",
           "render_wandering_timeline", "sparkline"]
