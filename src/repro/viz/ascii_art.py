"""ASCII renderings of the paper's figures.

Text output only — the benches print these so a run visually regenerates
Figure 1 (network snapshot with per-node shapes/functions), Figure 3
(horizontal wandering timeline) and Figure 4 (overlay stack).
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, Optional, Sequence

#: Glyphs for the functional roles (the "different shapes" of Figure 1).
ROLE_GLYPHS = {
    None: ".",
    "fn.fusion": "F",
    "fn.fission": "X",
    "fn.caching": "C",
    "fn.delegation": "D",
    "fn.replication": "R",
    "fn.nextstep": "n",
    "fn.filtering": "f",
    "fn.combining": "c",
    "fn.transcoding": "T",
    "fn.secmgmt": "S",
    "fn.boosting": "B",
    "fn.routing": "V",
    "fn.supplementary": "s",
    "fn.rooting": "r",
}


def glyph(role_id: Optional[str]) -> str:
    return ROLE_GLYPHS.get(role_id, "?")


def render_snapshot(snapshot: Dict) -> str:
    """Render one WanderingNetwork.snapshot() as text (Figure 1 frame)."""
    lines = [f"t={snapshot['time']:.1f}s  "
             f"entropy={snapshot['entropy']:.3f}"]
    for ship_id, info in sorted(snapshot["ships"].items(),
                                key=lambda kv: repr(kv[0])):
        g = glyph(info["active"])
        roles = ",".join(r.replace("fn.", "") for r in info["roles"])
        lines.append(f"  [{g}] {ship_id!s:<6} active={info['active'] or '-':<18}"
                     f" facts={info['facts']:<4} roles={roles}")
    if snapshot.get("virtual_networks"):
        lines.append("  virtual outstanding networks:")
        for role_id, members in sorted(snapshot["virtual_networks"].items()):
            lines.append(f"    {role_id:<20} "
                         f"{{{', '.join(str(m) for m in members)}}}")
    return "\n".join(lines)


def render_wandering_timeline(frames: Sequence[Dict],
                              node_order: Optional[Iterable[Hashable]] = None
                              ) -> str:
    """Figure 3 as text: one row per node, one glyph column per frame.

    ``frames`` are WanderingNetwork.snapshot() dicts taken over time.
    """
    if not frames:
        return "(no frames)"
    if node_order is None:
        node_order = sorted(frames[0]["ships"], key=repr)
    nodes = list(node_order)
    header = "node    | " + " ".join(
        f"{frame['time']:>4.0f}" for frame in frames)
    lines = [header, "-" * len(header)]
    for node in nodes:
        cells = []
        for frame in frames:
            info = frame["ships"].get(node)
            cells.append(f"   {glyph(info['active']) if info else 'x'}")
        lines.append(f"{node!s:<7} | " + " ".join(cells))
    legend = ", ".join(f"{g}={r.replace('fn.', '') if r else 'idle'}"
                       for r, g in sorted(ROLE_GLYPHS.items(),
                                          key=lambda kv: kv[1])
                       if any(g == c.strip() for line in lines[2:]
                              for c in line.split("|")[1].split()))
    return "\n".join(lines + [f"legend: {legend}"])


def render_overlays(overlay_snapshot: Dict[str, Dict]) -> str:
    """Figure 4 as text: the stack of virtual overlay networks."""
    if not overlay_snapshot:
        return "(no overlays)"
    lines = []
    for overlay_id, info in sorted(overlay_snapshot.items()):
        status = "connected" if info["connected"] else "PARTITIONED"
        members = ", ".join(str(m) for m in info["members"])
        lines.append(f"  {overlay_id:<14} links={info['links']:<3} "
                     f"{status:<12} members={{{members}}}")
    return "\n".join(["virtual overlay networks:"] + lines)


#: Block glyphs for sparkline rendering, lowest to highest.
_SPARK_BLOCKS = "▁▂▃▄▅▆▇█"


def sparkline(values: Sequence[float], width: Optional[int] = None) -> str:
    """A one-line unicode sparkline of a numeric series.

    Used by benches to show entropy/latency series compactly; constant
    series render flat, empty series render as ``(empty)``.
    """
    data = [float(v) for v in values]
    if not data:
        return "(empty)"
    if width is not None and len(data) > width:
        # Downsample by striding (keep first and last).
        stride = len(data) / width
        data = [data[int(i * stride)] for i in range(width - 1)] + \
            [data[-1]]
    lo, hi = min(data), max(data)
    if hi - lo < 1e-12:
        return _SPARK_BLOCKS[0] * len(data)
    out = []
    for v in data:
        idx = int((v - lo) / (hi - lo) * (len(_SPARK_BLOCKS) - 1))
        out.append(_SPARK_BLOCKS[idx])
    return "".join(out)


def render_resonance(field, top: int = 8) -> str:
    """The network's long-term memory: strongest structural couplings,
    with bar lengths proportional to coupling strength."""
    couplings = field.strongest_couplings(top=top)
    if not couplings:
        return "(no couplings learned yet)"
    peak = couplings[0][2]
    lines = ["network resonance (function ~ fact class):"]
    for fn, cls, value in couplings:
        bar = "#" * max(1, int(round(value / peak * 24)))
        lines.append(f"  {fn:<18} ~ {cls:<18} {bar} {value:.1f}")
    return "\n".join(lines)


def render_topology(topology, glyphs: Optional[Dict[Hashable, str]] = None
                    ) -> str:
    """Adjacency-list view of the physical network."""
    lines = ["physical network:"]
    for node in sorted(topology.nodes, key=repr):
        mark = (glyphs or {}).get(node, "o")
        peers = ", ".join(
            f"{peer}({topology.link(node, peer).name})"
            for peer in sorted(topology.neighbors(node, only_up=False),
                               key=repr))
        state = "" if topology.node_up(node) else " DOWN"
        lines.append(f"  [{mark}] {node!s:<6}{state} -- {peers}")
    return "\n".join(lines)
