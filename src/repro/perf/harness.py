"""The deterministic macro-benchmark harness (``repro bench``).

One :class:`BenchResult` per scenario run.  The *counters* block (and
the digest derived from it) is a pure function of ``(scenario, seed,
scale)`` — the only nondeterministic fields are the wall-clock
measurements, which live alongside but never inside the digest.  That
split is what makes the regression gate work: digests must match a
committed baseline **exactly** (semantic drift is a hard failure, no
threshold), while throughput is compared through a median-normalized
ratio that cancels machine-speed differences between the baseline host
and the current one.

The committed anchor ``BENCH_baseline.json`` is produced with every
optimization switch *off* (``repro bench --all --no-opt``), so default
runs double as the optimization's regression proof: same digests,
higher throughput.
"""

from __future__ import annotations

import json
import os
import time
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from ..shard.executor import run_sharded
from ..substrates.sim.agenda import tally_delta, tally_snapshot
from .digest import run_digest
from .scenarios import SCENARIOS, SHARD_WORKLOADS
from .switches import DEFAULTS, all_disabled, configured, switches

#: Schema version of the BENCH_*.json files.  Version 2 added
#: ``wall_times_s`` (per-repeat wall clocks), ``workers``/``backend``
#: and optional ``shard_stats``; version 3 added ``agenda_stats``
#: (agenda kind + insert/pop/purge/max-batch tallies).  :func:`compare`
#: reads only the fields shared by every version, so older files still
#: gate fine.
BENCH_VERSION = 3


class BenchResult:
    """One scenario execution: deterministic counters + wall measurements."""

    __slots__ = ("scenario", "seed", "scale", "switches", "repeats",
                 "wall_time_s", "wall_times_s", "events_per_sec",
                 "shuttles_per_sec", "events_executed",
                 "shuttles_processed", "peak_agenda_depth", "digest",
                 "counters", "workers", "backend", "shard_stats", "obs",
                 "agenda_stats")

    def __init__(self, scenario: str, seed: int, scale: str,
                 switch_state: Dict[str, bool], repeats: int,
                 wall_time_s: float, counters: Dict[str, Any],
                 work: Dict[str, int],
                 wall_times_s: Optional[Sequence[float]] = None,
                 workers: int = 1, backend: str = "inline",
                 shard_stats: Optional[Dict[str, Any]] = None,
                 agenda_stats: Optional[Dict[str, Any]] = None):
        self.scenario = scenario
        self.seed = int(seed)
        self.scale = scale
        self.switches = dict(switch_state)
        self.repeats = int(repeats)
        self.wall_time_s = wall_time_s
        self.wall_times_s = (list(wall_times_s) if wall_times_s is not None
                             else [wall_time_s])
        self.events_executed = int(work.get("events", 0))
        self.shuttles_processed = int(work.get("shuttles", 0))
        self.events_per_sec = (self.events_executed / wall_time_s
                               if wall_time_s > 0 else 0.0)
        self.shuttles_per_sec = (self.shuttles_processed / wall_time_s
                                 if wall_time_s > 0 else 0.0)
        self.peak_agenda_depth = int(counters.get("peak_agenda_depth", 0))
        self.counters = counters
        self.workers = int(workers)
        self.backend = backend
        self.shard_stats = shard_stats
        #: Agenda diagnostics for the *measured* (last) pass: structure
        #: kind, insert/pop/purge tallies and the largest same-timestamp
        #: batch.  Coordinator-process view only — mp workers advance
        #: their own fork-inherited tallies, which never cross the pipe.
        self.agenda_stats = agenda_stats
        #: Merged telemetry (``MergedObs``) when the run collected it.
        #: Lives on the object only — BENCH JSON stays pure counters.
        self.obs = None
        # The digest is a pure function of the deterministic counters —
        # never of workers/backend, which is exactly what lets a
        # --workers K run gate against a single-shard baseline.
        self.digest = run_digest(scenario, seed, scale, counters)

    def to_dict(self) -> Dict[str, Any]:
        payload = {
            "version": BENCH_VERSION,
            "scenario": self.scenario,
            "seed": self.seed,
            "scale": self.scale,
            "switches": self.switches,
            "repeats": self.repeats,
            "wall_time_s": round(self.wall_time_s, 6),
            "wall_times_s": [round(t, 6) for t in self.wall_times_s],
            "events_per_sec": round(self.events_per_sec, 2),
            "shuttles_per_sec": round(self.shuttles_per_sec, 2),
            "events_executed": self.events_executed,
            "shuttles_processed": self.shuttles_processed,
            "peak_agenda_depth": self.peak_agenda_depth,
            "workers": self.workers,
            "backend": self.backend,
            "digest": self.digest,
            "counters": self.counters,
        }
        if self.shard_stats is not None:
            payload["shard_stats"] = self.shard_stats
        if self.agenda_stats is not None:
            payload["agenda_stats"] = self.agenda_stats
        return payload

    def __repr__(self) -> str:
        return (f"<BenchResult {self.scenario} seed={self.seed} "
                f"scale={self.scale} {self.events_per_sec:.0f} ev/s "
                f"digest={self.digest}>")


# ----------------------------------------------------------------------
# running
# ----------------------------------------------------------------------

def run_scenario(name: str, seed: int = 42, scale: str = "short",
                 repeats: int = 1, workers: int = 1,
                 backend: str = "inline", obs: bool = False,
                 recovery: Optional[Any] = None) -> BenchResult:
    """Run one scenario; wall time is the best of ``repeats`` passes.

    ``workers > 1`` executes the scenario partitioned over shards
    (``backend`` is ``inline`` or ``mp``) when it has a registered
    :data:`~repro.perf.scenarios.SHARD_WORKLOADS` entry; any other
    scenario silently falls back to the single-shard path, whose
    counters are worker-invariant by construction.  The digest never
    depends on ``workers``.

    ``obs=True`` collects the distributed telemetry plane: the merged
    :class:`~repro.obs.snapshot.MergedObs` lands on the result's
    ``obs`` attribute (never in BENCH JSON).  Requires a shardable
    scenario — at ``workers=1`` the executor's single-shard fallback
    still produces a (K=1) merged view.  Telemetry is digest-neutral:
    counters stay byte-identical to an obs-off run.

    ``recovery`` (a :class:`~repro.shard.recovery.RecoveryConfig`, or
    ``True`` for the defaults) enables the fault-tolerant mp backend —
    worker supervision, epoch journaling, digest-identical crash
    recovery; the supervisor's accounting lands in
    ``shard_stats["recovery"]``.

    Every pass must reproduce the same counters — a mismatch means the
    scenario leaks process-global state and is reported loudly rather
    than averaged away.
    """
    try:
        fn, _ = SCENARIOS[name]
    except KeyError:
        known = ", ".join(sorted(SCENARIOS))
        raise KeyError(f"unknown scenario {name!r} (known: {known})")
    if repeats < 1:
        raise ValueError("repeats must be >= 1")
    if workers < 1:
        raise ValueError("workers must be >= 1")
    if obs and name not in SHARD_WORKLOADS:
        shardable = ", ".join(sorted(SHARD_WORKLOADS))
        raise ValueError(
            f"obs collection requires a shardable scenario "
            f"(known: {shardable}); {name!r} is not one")
    sharded = (workers > 1 or obs) and name in SHARD_WORKLOADS
    wall_times: List[float] = []
    counters = work = None
    shard_stats = None
    merged_obs = None
    tally_mark: Dict[str, int] = {}
    for _ in range(repeats):
        # Window the process-wide agenda tally per pass: every pass is
        # deterministic, so the last pass's delta is representative.
        tally_mark = tally_snapshot(reset_max=True)
        t0 = time.perf_counter()  # via: ignore[VIA003] host wall time
        if sharded:
            workload = SHARD_WORKLOADS[name](seed, scale)
            pass_counters, pass_work, shard_stats = run_sharded(
                workload, workers, backend=backend, obs=obs,
                recovery=recovery)
            # The MergedObs object must never leak into BENCH JSON —
            # pop it off the (serialized) stats dict.
            merged_obs = shard_stats.pop("obs", None) or merged_obs
        else:
            pass_counters, pass_work = fn(seed, scale)
        elapsed = time.perf_counter() - t0  # via: ignore[VIA003] host wall time
        if counters is not None and pass_counters != counters:
            raise RuntimeError(
                f"scenario {name!r} is not repeatable at seed={seed} "
                f"scale={scale!r}: counters drifted between passes")
        counters, work = pass_counters, pass_work
        wall_times.append(elapsed)
    agenda_stats: Dict[str, Any] = {
        "kind": "calendar" if switches.agenda_calendar else "heap",
        "batched": bool(switches.batch_delivery),
    }
    agenda_stats.update(tally_delta(tally_mark))
    result = BenchResult(name, seed, scale, switches.as_dict(), repeats,
                         min(wall_times), counters, work,
                         wall_times_s=wall_times,
                         workers=workers if sharded else 1,
                         backend=backend, shard_stats=shard_stats,
                         agenda_stats=agenda_stats)
    result.obs = merged_obs
    return result


def run_sanitized(name: str, seed: int = 42, scale: str = "short",
                  against: str = "self",
                  inject: Optional[Any] = None) -> Any:
    """Sanitize mode: run the scenario twice under draw tapes and diff.

    Run A is the plain single-shard scenario.  Run B depends on
    ``against``:

    * ``"self"``   — the identical run again (a clean environment must
      produce byte-identical tapes);
    * ``"no-opt"`` — every optimization switch off (optimizations may
      change *when* work happens, never *what* is drawn);
    * ``"obs"``    — telemetry collection on (observability must never
      draw).

    ``inject`` (an :class:`repro.sanitize.Injection`) perturbs one draw
    of run B, planting a divergence the diff must localize.  Returns a
    :class:`repro.sanitize.SanitizeReport`.
    """
    from ..sanitize import SanitizeReport, diff_tapes, taped
    if against not in ("self", "no-opt", "obs"):
        raise ValueError(f"unknown sanitize comparison {against!r} "
                         f"(known: self, no-opt, obs)")
    with taped() as tape_a:
        result_a = run_scenario(name, seed=seed, scale=scale)
    with taped(inject=inject) as tape_b:
        if against == "no-opt":
            with all_disabled():
                result_b = run_scenario(name, seed=seed, scale=scale)
        elif against == "obs":
            result_b = run_scenario(name, seed=seed, scale=scale,
                                    obs=True)
        else:
            result_b = run_scenario(name, seed=seed, scale=scale)
    return SanitizeReport(name, seed, scale, against,
                          result_a.digest, result_b.digest,
                          tape_a, tape_b, diff_tapes(tape_a, tape_b))


def run_all(seed: int = 42, scale: str = "short", repeats: int = 1,
            names: Optional[Sequence[str]] = None, workers: int = 1,
            backend: str = "inline",
            recovery: Optional[Any] = None) -> List[BenchResult]:
    """Run the suite (or the ``names`` subset) in catalog order."""
    selected = list(names) if names else list(SCENARIOS)
    return [run_scenario(name, seed=seed, scale=scale, repeats=repeats,
                         workers=workers, backend=backend,
                         recovery=recovery)
            for name in selected]


def ablate(name: str, seed: int = 42, scale: str = "short",
           repeats: int = 1) -> Dict[str, Any]:
    """Per-switch ablation of one scenario.

    Runs the scenario with all switches on, all off, and each switch
    individually disabled; checks every variant reproduces the all-on
    digest.  This is the machine-readable form of the optimization
    ledger's "digests byte-identical on vs. off" proof.
    """
    with configured(**{k: True for k in DEFAULTS}):
        on = run_scenario(name, seed=seed, scale=scale, repeats=repeats)
    variants: Dict[str, BenchResult] = {}
    with all_disabled():
        variants["all-off"] = run_scenario(name, seed=seed, scale=scale,
                                           repeats=repeats)
    for switch in DEFAULTS:
        with configured(**{switch: False}):
            variants[f"no-{switch}"] = run_scenario(
                name, seed=seed, scale=scale, repeats=repeats)
    return {
        "scenario": name, "seed": seed, "scale": scale,
        "digest": on.digest,
        "digest_stable": all(v.digest == on.digest
                             for v in variants.values()),
        "all_on": on.to_dict(),
        "variants": {k: v.to_dict() for k, v in variants.items()},
        "speedup_vs_all_off": (
            round(on.events_per_sec
                  / variants["all-off"].events_per_sec, 3)
            if variants["all-off"].events_per_sec else None),
    }


# ----------------------------------------------------------------------
# persistence
# ----------------------------------------------------------------------

def _slug(scenario: str) -> str:
    return scenario.replace("-", "_")


def write_results(results: Iterable[BenchResult], out_dir: str,
                  combined: Optional[str] = None) -> List[str]:
    """Write one ``BENCH_<scenario>.json`` per result into ``out_dir``
    (created if missing); optionally also a combined file holding the
    whole list (the baseline format)."""
    os.makedirs(out_dir, exist_ok=True)
    written = []
    payloads = [r.to_dict() for r in results]
    for payload in payloads:
        path = os.path.join(out_dir,
                            f"BENCH_{_slug(payload['scenario'])}.json")
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
            fh.write("\n")
        written.append(path)
    if combined is not None:
        with open(combined, "w", encoding="utf-8") as fh:
            json.dump(payloads, fh, indent=2, sort_keys=True)
            fh.write("\n")
        written.append(combined)
    return written


def load_results(path: str) -> List[Dict[str, Any]]:
    """Load a BENCH file: either one result object or a list of them."""
    with open(path, "r", encoding="utf-8") as fh:
        payload = json.load(fh)
    if isinstance(payload, dict):
        payload = [payload]
    if not isinstance(payload, list):
        raise ValueError(f"{path}: expected a BENCH object or list")
    return payload


# ----------------------------------------------------------------------
# regression gate
# ----------------------------------------------------------------------

def _median(values: Sequence[float]) -> float:
    ordered = sorted(values)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[mid]
    return (ordered[mid - 1] + ordered[mid]) / 2.0


def compare(current: Sequence[Dict[str, Any]],
            baseline: Sequence[Dict[str, Any]],
            fail_over_pct: float = 25.0) -> Tuple[bool, List[str]]:
    """Gate ``current`` results against a committed ``baseline``.

    Two checks, in order of severity:

    1. **Digest equality** (hard).  For every ``(scenario, seed,
       scale)`` present in both sets the run digests must be byte
       identical — optimizations may only change *when*, never *what*.
    2. **Throughput** (thresholded).  Per-scenario ratios
       ``current/baseline`` of events/sec are first divided by their
       median, cancelling uniform machine-speed differences between the
       baseline host and this one; a scenario whose *normalized* ratio
       falls below ``1 - fail_over_pct/100`` failed the gate.  With
       fewer than three overlapping scenarios the raw ratio is used
       (a median of so few points would cancel real regressions).

    Returns ``(ok, report_lines)``.
    """
    def key(entry: Dict[str, Any]) -> Tuple[Any, ...]:
        return (entry["scenario"], entry["seed"], entry["scale"])

    base_by_key = {key(entry): entry for entry in baseline}
    lines: List[str] = []
    ok = True
    overlap = [(entry, base_by_key[key(entry)]) for entry in current
               if key(entry) in base_by_key]
    if not overlap:
        return False, ["no overlapping (scenario, seed, scale) entries "
                       "between current results and baseline"]
    skipped = [key(entry) for entry in current
               if key(entry) not in base_by_key]
    for missing in skipped:
        lines.append(f"~ {missing[0]}: no baseline entry "
                     f"(seed={missing[1]}, scale={missing[2]}) — skipped")

    for cur, base in overlap:
        if cur["digest"] != base["digest"]:
            ok = False
            lines.append(
                f"✗ {cur['scenario']}: DIGEST MISMATCH "
                f"{cur['digest']} != baseline {base['digest']} "
                f"(semantic drift — hard failure)")

    ratios = []
    for cur, base in overlap:
        base_eps = base.get("events_per_sec") or 0.0
        cur_eps = cur.get("events_per_sec") or 0.0
        ratios.append((cur, base,
                       cur_eps / base_eps if base_eps > 0 else 1.0))
    norm = _median([r for _, _, r in ratios]) if len(ratios) >= 3 else 1.0
    floor = 1.0 - fail_over_pct / 100.0
    for cur, base, ratio in ratios:
        adjusted = ratio / norm if norm > 0 else ratio
        verdict = "✓"
        if adjusted < floor:
            ok = False
            verdict = "✗"
            lines.append(
                f"✗ {cur['scenario']}: throughput regressed "
                f"{(1.0 - adjusted) * 100.0:.1f}% normalized "
                f"(> {fail_over_pct:.0f}% budget)")
        lines.append(
            f"{verdict} {cur['scenario']}: "
            f"{cur['events_per_sec']:.0f} ev/s vs baseline "
            f"{base['events_per_sec']:.0f} ev/s "
            f"(raw ×{ratio:.2f}, normalized ×{adjusted:.2f}), "
            f"digest {cur['digest']} "
            f"{'==' if cur['digest'] == base['digest'] else '!='} baseline")
    lines.append(f"median raw ratio ×{norm:.2f} "
                 f"({len(ratios)} scenario(s), "
                 f"fail-over {fail_over_pct:.0f}%)")
    return ok, lines
