"""Optimization switches: every measured hot-path optimization is
individually toggleable.

The determinism contract of the perf work is *provable equivalence*:
for any seeded scenario, the run digest must be byte-identical with an
optimization on or off.  That proof needs a way to run the unoptimized
reference path, so every optimization guards itself on one of the flags
below instead of deleting the code it replaces.

The flags are process-global (one :data:`switches` instance) because
the optimized call sites are constructors and kernel loops that have no
natural place to thread a config through.  Tests and the bench harness
flip them via :func:`configured`, which restores the previous state on
exit.

Flags
-----
``kernel_fast_loop``
    :meth:`Simulator.run` uses the inlined single-purge event loop
    (attribute lookups hoisted, one heap pop per event) instead of the
    reference ``peek()``/``step()`` loop.
``cow_clone``
    :meth:`Shuttle.clone` / :meth:`Jet.spawn_copy` freeze the directive
    cargo into a shared tuple and copy slots directly instead of
    re-running the constructor (no size/manifest recomputation).
``admission_memo``
    :meth:`AdmissionVerifier.vet` memoizes whole-shuttle verdicts keyed
    by a payload digest (retransmitted clones and repeated role
    shuttles vet once).
``digest_cache``
    :meth:`KnowledgeBase.content_digest` and
    :meth:`Observability.metrics_digest` reuse their last canonical
    JSON/sha256 result until a dirty bit invalidates it.
``agenda_calendar``
    :class:`Simulator` stores pending events in a calendar-queue agenda
    (sorted buckets, O(1) amortized insert) instead of the reference
    binary heap.  Selected at simulator *construction*; both structures
    pop the exact ``(time, priority, seq)`` order and agree on entry
    counts at every push point, so ``peak_agenda_depth`` and all run
    digests are byte-identical.
``batch_delivery``
    The fast event loop drains every event sharing the head timestamp
    into one batch (canonical intra-batch order preserved, including
    same-instant insertions from callbacks), and the MFP hot paths gain
    vectorized numpy batch entry points
    (:meth:`FeedbackBus.observe_batch`, :meth:`KnowledgeBase.sweep`,
    the adaptive router's hello-vector screen) that are IEEE-exact or
    scalar-oracle-checked at decision boundaries.
``object_pool``
    ``Event``/``Shuttle``/``Jet`` instances are recycled through free
    lists (:mod:`repro.perf.pool`) with exact id-counter-draw parity;
    release sites prove last-reference ownership via a refcount guard,
    so retained objects are never recycled.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Dict, Iterator

#: Every known flag with its default (optimizations on).
DEFAULTS: Dict[str, bool] = {
    "kernel_fast_loop": True,
    "cow_clone": True,
    "admission_memo": True,
    "digest_cache": True,
    "agenda_calendar": True,
    "batch_delivery": True,
    "object_pool": True,
}


class Switches:
    """Process-global optimization toggles (see module docstring)."""

    __slots__ = tuple(DEFAULTS)

    def __init__(self, **overrides: bool):
        unknown = set(overrides) - set(DEFAULTS)
        if unknown:
            raise ValueError(f"unknown optimization switches: "
                             f"{sorted(unknown)}")
        for name, default in DEFAULTS.items():
            setattr(self, name, bool(overrides.get(name, default)))

    def as_dict(self) -> Dict[str, bool]:
        return {name: getattr(self, name) for name in DEFAULTS}

    def set_all(self, value: bool) -> None:
        for name in DEFAULTS:
            setattr(self, name, bool(value))

    def __repr__(self) -> str:
        state = " ".join(f"{k}={'on' if v else 'off'}"
                         for k, v in self.as_dict().items())
        return f"<Switches {state}>"


#: The process-global switch block consulted by the optimized call sites.
switches = Switches()


@contextmanager
def configured(**overrides: bool) -> Iterator[Switches]:
    """Temporarily override optimization switches.

    >>> with configured(cow_clone=False):
    ...     shuttle.clone()        # eager reference path
    """
    unknown = set(overrides) - set(DEFAULTS)
    if unknown:
        raise ValueError(f"unknown optimization switches: {sorted(unknown)}")
    saved = switches.as_dict()
    try:
        for name, value in overrides.items():
            setattr(switches, name, bool(value))
        yield switches
    finally:
        for name, value in saved.items():
            setattr(switches, name, value)


@contextmanager
def all_disabled() -> Iterator[Switches]:
    """Run with every optimization off (the pre-optimization tree)."""
    with configured(**{name: False for name in DEFAULTS}) as sw:
        yield sw
