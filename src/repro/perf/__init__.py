"""repro.perf: the deterministic throughput harness and optimization
switches.

Two halves:

* :mod:`repro.perf.switches` — process-global toggles for every
  measured hot-path optimization (kernel fast loop, copy-on-write
  clones, memoized admission verdicts, cached digests).  The optimized
  call sites in the kernel/core/staticcheck planes import *only* this
  module, so this package ``__init__`` must stay import-light: pulling
  the harness in here would create a cycle
  (kernel -> perf -> harness -> core -> kernel).
* :mod:`repro.perf.harness` / :mod:`repro.perf.scenarios` — the
  ``repro bench`` macro-benchmark suite: seeded scenarios whose
  *digests* are pure functions of (seed, scale) and whose throughput
  numbers anchor the ``BENCH_*.json`` trajectory.  Loaded lazily via
  ``__getattr__``.
"""

from __future__ import annotations

from .switches import DEFAULTS, Switches, all_disabled, configured, switches

__all__ = [
    "DEFAULTS", "Switches", "all_disabled", "configured", "switches",
    # lazily loaded:
    "BenchResult", "SCENARIOS", "SHARD_WORKLOADS", "run_scenario",
    "run_all", "ablate", "compare", "write_results", "load_results",
    "run_digest", "canonical_digest",
]

_LAZY = {
    "BenchResult": "harness", "run_scenario": "harness",
    "run_all": "harness", "ablate": "harness", "compare": "harness",
    "write_results": "harness", "load_results": "harness",
    "SCENARIOS": "scenarios", "SHARD_WORKLOADS": "scenarios",
    "run_digest": "digest", "canonical_digest": "digest",
}


def __getattr__(name: str):
    module_name = _LAZY.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute "
                             f"{name!r}")
    import importlib
    module = importlib.import_module(f".{module_name}", __name__)
    value = getattr(module, name)
    globals()[name] = value
    return value
