"""The standard benchmark scenario suite.

Each scenario is a seeded, self-contained workload that stresses one
hot plane of the stack and returns only deterministic quantities:

========================  ==================================================
``event-loop``            pure kernel churn: timer chains + lazy
                          cancellations (Simulator.run inner loop)
``shuttle-storm``         role shuttles docking across a quiet grid WN
                          (clone + admission + directive interpretation)
``jet-flood``             self-replicating jets sweeping the grid
                          (spawn_copy + NodeOS-supervised replication)
``arq-storm``             reliable transport over a lossy fabric
                          (template clones, retransmission, acks, dedup)
``admission-dock``        repeated docking of identical payload clones at
                          one ship (the verdict-memo hot path)
``nomadic``               a nomadic user firing task capsules while
                          walking a route (end-to-end workload plane)
========================  ==================================================

Scenario functions never read wall clocks or host state; the harness
times them from outside.  The dict a scenario returns becomes the
``counters`` block of its ``BENCH_<scenario>.json`` and is folded into
the run digest, so everything in it must be machine-independent and a
pure function of ``(seed, scale)``.

Scales: ``tiny`` (unit tests), ``short`` (CI smoke), ``medium`` (the
shard-scaling measurements), ``full`` (the committed trajectory
numbers).

Sharding: scenarios listed in :data:`SHARD_WORKLOADS` also exist as
:class:`~repro.shard.executor.ShardWorkload` classes and can execute
partitioned over worker shards (``repro bench --workers K``) with
byte-identical digests; everything else falls back to the single-shard
path regardless of ``--workers``.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, FrozenSet, Hashable, Optional, Tuple

from ..shard.executor import ShardWorkload, run_single, shard_fabric_factory
from .digest import round_floats

#: scale -> multiplier applied to each scenario's base workload knobs.
SCALES = ("tiny", "short", "medium", "full")


def _scale_params(scale: str, tiny: Dict[str, Any], short: Dict[str, Any],
                  full: Dict[str, Any],
                  medium: Optional[Dict[str, Any]] = None) -> Dict[str, Any]:
    if scale == "tiny":
        return tiny
    if scale == "short":
        return short
    if scale == "medium":
        # Scenarios without an explicit medium sit at the CI size.
        return medium if medium is not None else short
    if scale == "full":
        return full
    raise ValueError(f"unknown scale {scale!r} (known: {SCALES})")


def _quiet_wn(seed: int, rows: int, cols: int, loss_rate: float = 0.0,
              fabric_factory=None, latency: float = 0.01):
    """A grid WN with the autopoietic loop parked far beyond the run,
    so the scenario's own traffic is the only event source (the same
    recipe the chaos campaigns use for exact accounting)."""
    from ..core.wandering_network import (WanderingNetwork,
                                          WanderingNetworkConfig)
    from ..substrates.phys import grid_topology
    config = WanderingNetworkConfig(
        seed=seed, router="static", loss_rate=loss_rate,
        resonance_enabled=False,
        horizontal_wandering=False, vertical_wandering=False,
        audits_enabled=False,
        pulse_interval=1e9, publish_interval=1e9)
    return WanderingNetwork(grid_topology(rows, cols, latency=latency),
                            config, fabric_factory=fabric_factory)


# ----------------------------------------------------------------------
# event-loop: kernel churn
# ----------------------------------------------------------------------

def scenario_event_loop(seed: int, scale: str) -> Tuple[Dict[str, Any],
                                                        Dict[str, Any]]:
    """Timer chains plus lazy cancellations: the bare agenda loop.

    ``chains`` self-rescheduling callbacks hop forward with jittered
    delays; every few hops a chain schedules a decoy event and cancels
    it, so the lazy-cancellation purge is on the hot path too.
    """
    from ..substrates.sim import Simulator
    p = _scale_params(
        scale,
        tiny={"chains": 8, "hops": 50},
        short={"chains": 32, "hops": 400},
        medium={"chains": 48, "hops": 1200},
        full={"chains": 64, "hops": 4000})
    sim = Simulator(seed=seed)
    rng = sim.rng.stream("perf.event_loop")
    cancelled = 0

    def hop(chain: int, remaining: int) -> None:
        nonlocal cancelled
        if remaining <= 0:
            return
        delay = 0.001 + rng.uniform(0.0, 0.01)
        sim.call_in(delay, hop, chain, remaining - 1, name="bench-hop")
        if remaining % 4 == 0:
            decoy = sim.schedule(delay + 1.0, name="bench-decoy")
            decoy.cancel()
            cancelled += 1

    for chain in range(p["chains"]):
        sim.call_in(0.001 * (chain + 1), hop, chain, p["hops"],
                    name="bench-hop")
    sim.run()
    counters = {
        "events_executed": sim.events_executed,
        "cancelled": cancelled,
        "final_time": round(sim.now, 9),
        "peak_agenda_depth": sim.peak_agenda_depth,
    }
    work = {"events": sim.events_executed, "shuttles": 0}
    return counters, work


# ----------------------------------------------------------------------
# shard workloads: the scenarios that also run partitioned
# ----------------------------------------------------------------------
#
# The three workloads below are written *order-invariant*: every
# counter they emit is a sum over completed traffic (the horizon
# includes a drain tail long past the last send, so sent == processed
# regardless of how equal-timestamp events interleave), hop counts
# come from the static router, and ``final_time`` is the horizon
# itself.  That is what makes the K-shard digest equal the single-
# shard digest byte for byte: the conservative epoch executor
# preserves every event's *time* exactly, while same-time tie-breaks
# may differ — so nothing digest-visible may depend on them.
# ``peak_agenda_depth`` is the one kernel counter that is genuinely
# tie-order- and partition-dependent, which is why these scenarios do
# not report it.

class _GridShardWorkload(ShardWorkload):
    """Shared plumbing: a quiet grid WN replica per shard."""

    #: link latency of the benchmark grid (drives the shard lookahead).
    latency = 0.01
    __slots__ = ("p",)

    def topology(self):
        from ..substrates.phys import grid_topology
        return grid_topology(self.p["rows"], self.p["cols"],
                             latency=self.latency)

    def build(self, owned: Optional[FrozenSet[Hashable]] = None
              ) -> Dict[str, Any]:
        wn = _quiet_wn(self.seed, self.p["rows"], self.p["cols"],
                       fabric_factory=shard_fabric_factory(owned),
                       latency=self.latency)
        return {"wn": wn, "sim": wn.sim, "fabric": wn.fabric}

    def _ships(self, ctx, owned):
        wn = ctx["wn"]
        if owned is None:
            return list(wn.ships.values())
        return [wn.ships[node] for node in owned]


class ShuttleStormWorkload(_GridShardWorkload):
    """A storm of role shuttles cloned from a few templates.

    Each of the four source ships runs its own driver on its own RNG
    stream (``perf.shuttle_storm.<i>``) with its own send quota, so a
    shard owning a source reproduces that source's traffic exactly
    without reference to the other shards.  The clone path, the
    admission gate and the directive interpreter all sit on the hot
    path; templates are frozen, so CoW sharing engages when enabled.
    """

    name = "shuttle-storm"
    __slots__ = ()
    roles = ("fn.caching", "fn.filtering", "fn.transcoding", "fn.fusion")

    def __init__(self, seed: int, scale: str):
        super().__init__(seed, scale)
        self.p = _scale_params(
            scale,
            tiny={"rows": 2, "cols": 2, "per_source": 10},
            short={"rows": 3, "cols": 3, "per_source": 100},
            medium={"rows": 4, "cols": 5, "per_source": 400},
            full={"rows": 5, "cols": 5, "per_source": 1000})

    def horizon(self) -> float:
        # Last send at 0.05 * per_source, then a drain tail so every
        # shuttle in flight docks before the clock stops.
        return round(0.05 * (self.p["per_source"] + 4) + 2.0, 9)

    def setup(self, ctx: Dict[str, Any],
              owned: Optional[FrozenSet[Hashable]]) -> None:
        wn = ctx["wn"]
        nodes = sorted(wn.ships, key=repr)
        ctx["sent"] = [0] * len(self.roles)
        for index, role in enumerate(self.roles):
            src = nodes[index % len(nodes)]
            if owned is None or src in owned:
                self._install(ctx, wn, nodes, index, role, src)

    def _install(self, ctx, wn, nodes, index, role, src):
        from ..core.shuttle import (OP_ACQUIRE_ROLE, OP_SET_NEXT_STEP,
                                    Directive, Shuttle)
        sim = wn.sim
        template = Shuttle(src, src,
                           directives=[
                               Directive(OP_ACQUIRE_ROLE, role_id=role),
                               Directive(OP_SET_NEXT_STEP, role_id=role)],
                           credential=wn.credential,
                           interface=wn.ships[src].interface).freeze_cargo()
        rng = sim.rng.stream(f"perf.shuttle_storm.{index}")
        quota = self.p["per_source"]
        counts = ctx["sent"]

        def blast() -> None:
            if counts[index] >= quota:
                task.stop()
                return
            shuttle = template.clone()
            shuttle.dst = nodes[rng.randrange(len(nodes))]
            shuttle.created_at = sim.now
            wn.ships[src].send_toward(shuttle)
            counts[index] += 1

        task = sim.every(0.05, blast)

    def collect(self, ctx: Dict[str, Any],
                owned: Optional[FrozenSet[Hashable]]) -> Dict[str, Any]:
        ships = self._ships(ctx, owned)
        return {
            "sent": sum(ctx["sent"]),
            "processed": sum(s.shuttles_processed for s in ships),
            "rejected": sum(s.shuttles_rejected for s in ships),
            "events_executed": ctx["sim"].events_executed,
        }

    def finalize(self, totals: Dict[str, Any]
                 ) -> Tuple[Dict[str, Any], Dict[str, int]]:
        counters = {
            "sent": totals["sent"],
            "processed": totals["processed"],
            "rejected": totals["rejected"],
            "events_executed": totals["events_executed"],
            "final_time": round(self.horizon(), 9),
        }
        work = {"events": totals["events_executed"],
                "shuttles": totals["processed"]}
        return counters, work


def scenario_shuttle_storm(seed: int, scale: str) -> Tuple[Dict[str, Any],
                                                           Dict[str, Any]]:
    """Single-shard entry point for :class:`ShuttleStormWorkload`."""
    return run_single(ShuttleStormWorkload(seed, scale))


# ----------------------------------------------------------------------
# jet-flood: replication plane
# ----------------------------------------------------------------------

class JetFloodWorkload(_GridShardWorkload):
    """Waves of self-replicating jets sweeping a grid.

    A wave launches at its origin ship only in the shard owning that
    origin; the jet's copies carry their ``visited`` set with them, so
    replication decisions are packet-local and migrate cleanly across
    shard boundaries.
    """

    name = "jet-flood"
    __slots__ = ()

    def __init__(self, seed: int, scale: str):
        super().__init__(seed, scale)
        self.p = _scale_params(
            scale,
            tiny={"rows": 3, "cols": 3, "waves": 3, "budget": 8},
            short={"rows": 4, "cols": 4, "waves": 12, "budget": 24},
            medium={"rows": 5, "cols": 5, "waves": 30, "budget": 36},
            full={"rows": 6, "cols": 6, "waves": 60, "budget": 48})

    def horizon(self) -> float:
        # Waves land every 0.5; the 10-unit tail drains the last flood.
        return round(0.5 * (self.p["waves"] + 20), 9)

    def setup(self, ctx: Dict[str, Any],
              owned: Optional[FrozenSet[Hashable]]) -> None:
        wn, sim = ctx["wn"], ctx["sim"]
        nodes = sorted(wn.ships, key=repr)
        ctx["launched"] = [0]

        def launch(wave: int) -> None:
            from ..core.shuttle import OP_SET_NEXT_STEP, Directive, Jet
            origin = nodes[wave % len(nodes)]
            jet = Jet(origin, origin,
                      directives=[Directive(OP_SET_NEXT_STEP,
                                            role_id="fn.caching")],
                      replicate_budget=self.p["budget"], max_fanout=3,
                      credential=wn.credential,
                      interface=wn.ships[origin].interface)
            jet.freeze_cargo()
            wn.ships[origin].originate(jet)
            ctx["launched"][0] += 1

        for wave in range(self.p["waves"]):
            origin = nodes[wave % len(nodes)]
            if owned is None or origin in owned:
                sim.call_in(0.5 * (wave + 1), launch, wave,
                            name="bench-jet")

    def collect(self, ctx: Dict[str, Any],
                owned: Optional[FrozenSet[Hashable]]) -> Dict[str, Any]:
        ships = self._ships(ctx, owned)
        return {
            "launched": ctx["launched"][0],
            "replicated": sum(s.jets_replicated for s in ships),
            "processed": sum(s.shuttles_processed for s in ships),
            "events_executed": ctx["sim"].events_executed,
        }

    def finalize(self, totals: Dict[str, Any]
                 ) -> Tuple[Dict[str, Any], Dict[str, int]]:
        counters = {
            "launched": totals["launched"],
            "replicated": totals["replicated"],
            "processed": totals["processed"],
            "events_executed": totals["events_executed"],
            "final_time": round(self.horizon(), 9),
        }
        work = {"events": totals["events_executed"],
                "shuttles": totals["processed"]}
        return counters, work


def scenario_jet_flood(seed: int, scale: str) -> Tuple[Dict[str, Any],
                                                       Dict[str, Any]]:
    """Single-shard entry point for :class:`JetFloodWorkload`."""
    return run_single(JetFloodWorkload(seed, scale))


# ----------------------------------------------------------------------
# shard-scaling: the partitioned-execution macro-benchmark
# ----------------------------------------------------------------------

class ShardScalingWorkload(_GridShardWorkload):
    """Every node pumps admission-heavy quanta at its ring successor.

    Designed to *scale*: work is spread evenly over all nodes (one
    driver per node), each shuttle carries a unique knowledge quantum
    whose full admission vet is the dominant CPU cost (unique payloads
    defeat the verdict memo on purpose), and the grid's 0.05 latency
    gives the shard executor a wide lookahead — few barriers, long
    epochs.  All quanta are byte-for-byte the same *size* (fixed-width
    fact values), so token-bucket waits are a pure function of the
    per-link arrival multiset, not of tie-break order.
    """

    name = "shard-scaling"
    __slots__ = ()
    latency = 0.05

    def __init__(self, seed: int, scale: str):
        super().__init__(seed, scale)
        self.p = _scale_params(
            scale,
            tiny={"rows": 2, "cols": 2, "per_node": 6, "facts": 8},
            short={"rows": 3, "cols": 3, "per_node": 40, "facts": 16},
            medium={"rows": 4, "cols": 5, "per_node": 220, "facts": 24},
            full={"rows": 6, "cols": 6, "per_node": 600, "facts": 24})

    def horizon(self) -> float:
        return round(0.1 * (self.p["per_node"] + 4) + 2.0, 9)

    def setup(self, ctx: Dict[str, Any],
              owned: Optional[FrozenSet[Hashable]]) -> None:
        wn = ctx["wn"]
        nodes = sorted(wn.ships, key=repr)
        ctx["sent"] = [0] * len(nodes)
        for index, src in enumerate(nodes):
            if owned is None or src in owned:
                dst = nodes[(index + 1) % len(nodes)]
                self._install(ctx, wn, index, src, dst)

    def _install(self, ctx, wn, index, src, dst):
        from ..core.knowledge import KnowledgeQuantum
        from ..core.shuttle import OP_DEPLOY_QUANTUM, Directive, Shuttle
        sim = wn.sim
        quota = self.p["per_node"]
        facts = self.p["facts"]
        counts = ctx["sent"]

        def pump() -> None:
            i = counts[index]
            if i >= quota:
                task.stop()
                return
            quantum = KnowledgeQuantum(
                f"bench.sh{index:04d}",
                [{"fact_class": "bench-shard",
                  "value": f"{index:04d}-{i:06d}-{k:02d}",
                  "weight": 1.0} for k in range(facts)])
            shuttle = Shuttle(src, dst,
                              directives=[Directive(OP_DEPLOY_QUANTUM,
                                                    quantum=quantum)],
                              credential=wn.credential,
                              interface=wn.ships[src].interface)
            shuttle.freeze_cargo()
            wn.ships[src].send_toward(shuttle)
            counts[index] = i + 1

        task = sim.every(0.1, pump)

    def collect(self, ctx: Dict[str, Any],
                owned: Optional[FrozenSet[Hashable]]) -> Dict[str, Any]:
        ships = self._ships(ctx, owned)
        return {
            "sent": sum(ctx["sent"]),
            "processed": sum(s.shuttles_processed for s in ships),
            "rejected": sum(s.shuttles_rejected for s in ships),
            "facts": sum(len(s.knowledge) for s in ships),
            "events_executed": ctx["sim"].events_executed,
        }

    def finalize(self, totals: Dict[str, Any]
                 ) -> Tuple[Dict[str, Any], Dict[str, int]]:
        counters = {
            "sent": totals["sent"],
            "processed": totals["processed"],
            "rejected": totals["rejected"],
            "facts": totals["facts"],
            "events_executed": totals["events_executed"],
            "final_time": round(self.horizon(), 9),
        }
        work = {"events": totals["events_executed"],
                "shuttles": totals["processed"]}
        return counters, work


def scenario_shard_scaling(seed: int, scale: str) -> Tuple[Dict[str, Any],
                                                           Dict[str, Any]]:
    """Single-shard entry point for :class:`ShardScalingWorkload`."""
    return run_single(ShardScalingWorkload(seed, scale))


# ----------------------------------------------------------------------
# arq-storm: reliable transport under loss
# ----------------------------------------------------------------------

def scenario_arq_storm(seed: int, scale: str) -> Tuple[Dict[str, Any],
                                                       Dict[str, Any]]:
    """Reliable role delivery over a lossy fabric.

    Every send stores a frozen template; each attempt transmits a fresh
    clone, so retransmission exercises exactly the CoW path the ARQ
    optimizes.  The drain runs past the worst-case backoff so every
    delivery resolves (``delivered + dlq == sent`` holds).
    """
    from ..core.shuttle import (OP_ACQUIRE_ROLE, OP_SET_NEXT_STEP,
                                Directive, Shuttle)
    from ..resilience.arq import ReliableTransport
    p = _scale_params(
        scale,
        tiny={"rows": 2, "cols": 2, "sends": 30, "loss": 0.15},
        short={"rows": 3, "cols": 3, "sends": 200, "loss": 0.15},
        medium={"rows": 3, "cols": 4, "sends": 600, "loss": 0.15},
        full={"rows": 4, "cols": 4, "sends": 1500, "loss": 0.15})
    wn = _quiet_wn(seed, p["rows"], p["cols"], loss_rate=p["loss"])
    sim = wn.sim
    transport = ReliableTransport(sim, wn.ships, base_timeout=0.5,
                                  max_timeout=4.0, max_attempts=5,
                                  jitter=0.25)
    nodes = sorted(wn.ships, key=repr)
    roles = ("fn.caching", "fn.filtering", "fn.transcoding", "fn.fusion")
    rng = sim.rng.stream("perf.arq_storm")
    sent = 0

    def send_one() -> None:
        nonlocal sent
        if sent >= p["sends"]:
            task.stop()
            return
        src = nodes[rng.randrange(len(nodes))]
        dst = src
        while dst == src:
            dst = nodes[rng.randrange(len(nodes))]
        role = roles[sent % len(roles)]
        shuttle = Shuttle(src, dst,
                          directives=[
                              Directive(OP_ACQUIRE_ROLE, role_id=role),
                              Directive(OP_SET_NEXT_STEP, role_id=role)],
                          credential=wn.credential,
                          interface=wn.ships[src].interface)
        transport.send(src, shuttle)
        sent += 1

    task = sim.every(0.1, send_one)
    sim.run(until=0.1 * (p["sends"] + 4))
    # Drain: worst-case backoff chain, then finalize the stragglers.
    sim.run(until=sim.now + 5 * 4.0 * 1.25 + 5.0)
    transport.finalize()
    duplicates = sum(s.duplicate_shuttles for s in wn.ships.values())
    counters = {
        "sent": transport.sent,
        "delivered": transport.delivered,
        "retries": transport.retries,
        "dlq": len(transport.dlq),
        "duplicates": duplicates,
        "mean_latency": round(transport.mean_latency, 9),
        "events_executed": sim.events_executed,
        "final_time": round(sim.now, 9),
        "peak_agenda_depth": sim.peak_agenda_depth,
    }
    work = {"events": sim.events_executed,
            "shuttles": transport.delivered + transport.retries}
    return counters, work


# ----------------------------------------------------------------------
# admission-dock: the verdict-memo hot path
# ----------------------------------------------------------------------

def scenario_admission_dock(seed: int, scale: str) -> Tuple[Dict[str, Any],
                                                            Dict[str, Any]]:
    """Repeated docking of payload-identical clones at one ship.

    The dominant cost is the static admission vet of the same few
    payload shapes over and over — manifest recomputation, directive
    schemas, quantum well-formedness, carried-code lint lookups —
    exactly the sweep the verdict memo collapses.  Most templates are
    *poison* (manifest forged after construction, heavy module +
    quantum cargo): the gate runs its full sweep and rejects them, so
    the vet, not directive execution, dominates.  Two honest templates
    keep the accept path in the digest.  Cache-hit counters stay *out*
    of the digest: they legitimately differ with the memo on vs. off;
    verdict outcomes may not.
    """
    from ..core.knowledge import KnowledgeQuantum
    from ..core.shuttle import (OP_ACQUIRE_ROLE, OP_DEPLOY_QUANTUM,
                                OP_SET_NEXT_STEP, Directive, Shuttle)
    from ..functions import (CachingRole, CombiningRole, DelegationRole,
                             FilteringRole, FusionRole, TranscodingRole)
    p = _scale_params(
        scale,
        tiny={"docks": 60},
        short={"docks": 600},
        medium={"docks": 2000},
        full={"docks": 6000})
    wn = _quiet_wn(seed, 1, 2)
    sim = wn.sim
    nodes = sorted(wn.ships, key=repr)
    src, dst = nodes[0], nodes[1]
    ship = wn.ships[dst]
    role_classes = (CachingRole, FilteringRole, FusionRole,
                    DelegationRole, CombiningRole, TranscodingRole)
    templates = []
    for honest_role in (CachingRole, FilteringRole):
        templates.append(Shuttle(
            src, dst,
            directives=[
                Directive(OP_ACQUIRE_ROLE, role_id=honest_role.role_id),
                Directive(OP_SET_NEXT_STEP, role_id=honest_role.role_id)],
            credential=wn.credential,
            interface=ship.interface).freeze_cargo())
    for start in range(4):
        quantum = KnowledgeQuantum(
            f"bench.kq{start}",
            [{"fact_class": "bench-fact", "value": f"v{start}-{i}",
              "weight": 1.0} for i in range(12)])
        poison = Shuttle(
            src, dst,
            directives=[Directive(OP_ACQUIRE_ROLE,
                                  role_id=role_cls.role_id,
                                  module=role_cls.code_module())
                        for role_cls in role_classes[start:start + 5]]
                       + [Directive(OP_DEPLOY_QUANTUM, quantum=quantum)],
            credential=wn.credential, interface=ship.interface)
        poison.meta["manifest"] = ("install-code",)   # forged en route
        poison.freeze_cargo()
        templates.append(poison)
    docked = 0

    def dock() -> None:
        nonlocal docked
        if docked >= p["docks"]:
            task.stop()
            return
        shuttle = templates[docked % len(templates)].clone()
        shuttle.created_at = sim.now
        ship.process_shuttle(shuttle, from_node=src)
        docked += 1

    task = sim.every(0.01, dock)
    sim.run(until=0.01 * (p["docks"] + 4))
    counters = {
        "docked": docked,
        "processed": ship.shuttles_processed,
        "rejected": ship.shuttles_rejected,
        "admission_rejected": ship.shuttles_admission_rejected,
        "events_executed": sim.events_executed,
        "final_time": round(sim.now, 9),
        "peak_agenda_depth": sim.peak_agenda_depth,
    }
    work = {"events": sim.events_executed, "shuttles": docked}
    return counters, work


# ----------------------------------------------------------------------
# nomadic: the end-to-end workload plane
# ----------------------------------------------------------------------

def scenario_nomadic(seed: int, scale: str) -> Tuple[Dict[str, Any],
                                                     Dict[str, Any]]:
    """A nomadic user walks a route firing task capsules at a delegate."""
    from ..functions import DelegationRole
    from ..workloads.nomadic import NomadicUser
    p = _scale_params(
        scale,
        tiny={"rows": 2, "cols": 3, "duration": 30.0},
        short={"rows": 3, "cols": 3, "duration": 200.0},
        medium={"rows": 3, "cols": 4, "duration": 600.0},
        full={"rows": 4, "cols": 4, "duration": 1500.0})
    wn = _quiet_wn(seed, p["rows"], p["cols"])
    sim = wn.sim
    nodes = sorted(wn.ships, key=repr)
    delegate = nodes[0]
    wn.deploy_role(DelegationRole, at=delegate, activate=True)
    user = NomadicUser(sim, wn.ships, route=nodes[1:], delegate=delegate,
                       dwell_time=10.0, task_interval=0.5)
    # user_id comes from a process-global sequence and leaks into task
    # flow ids (and from there into recorded facts); pin it so the run
    # is a pure function of (seed, scale) regardless of what ran before.
    user.user_id = "bench-nomad"
    user.start()
    sim.run(until=p["duration"])
    user.stop()
    sim.run(until=p["duration"] + 5.0)
    counters = round_floats({
        "tasks_sent": user.tasks_sent,
        "completed": len(user.results),
        "completion_ratio": user.completion_ratio(),
        "mean_latency": (user.mean_latency()
                         if user.results else 0.0),
        "events_executed": sim.events_executed,
        "final_time": sim.now,
        "peak_agenda_depth": sim.peak_agenda_depth,
    })
    work = {"events": sim.events_executed, "shuttles": user.tasks_sent}
    return counters, work


# ----------------------------------------------------------------------
# audit-sweep: the digest-cache hot path
# ----------------------------------------------------------------------

def scenario_audit_sweep(seed: int, scale: str) -> Tuple[Dict[str, Any],
                                                         Dict[str, Any]]:
    """Periodic integrity audits over large, slowly-changing stores.

    Every sweep fingerprints each ship's knowledge base
    (:meth:`~repro.core.knowledge.KnowledgeBase.content_digest`) and
    the metrics registry (:meth:`~repro.obs.facade.Observability.
    metrics_digest`); mutations arrive an order of magnitude less often
    than sweeps, so most audits re-read unchanged state — the dirty-bit
    / stamp caches' designed case.  The digests themselves are chained
    into the run digest, so a cache returning a stale fingerprint is a
    hard benchmark failure, not just a slow run.
    """
    import hashlib
    from ..core.shuttle import (OP_ACQUIRE_ROLE, OP_SET_NEXT_STEP,
                                Directive, Shuttle)
    p = _scale_params(
        scale,
        tiny={"rows": 1, "cols": 3, "facts": 60, "sweeps": 20},
        short={"rows": 2, "cols": 3, "facts": 300, "sweeps": 120},
        medium={"rows": 2, "cols": 4, "facts": 350, "sweeps": 240},
        full={"rows": 3, "cols": 4, "facts": 400, "sweeps": 600})
    wn = _quiet_wn(seed, p["rows"], p["cols"])
    sim = wn.sim
    sim.obs.enable()
    nodes = sorted(wn.ships, key=repr)
    for index, node in enumerate(nodes):
        ship = wn.ships[node]
        for i in range(p["facts"]):
            ship.record_fact(f"bench-class-{i % 7}", f"fact-{index}-{i}")
    template = Shuttle(nodes[0], nodes[-1],
                       directives=[
                           Directive(OP_ACQUIRE_ROLE,
                                     role_id="fn.caching"),
                           Directive(OP_SET_NEXT_STEP,
                                     role_id="fn.caching")],
                       credential=wn.credential,
                       interface=wn.ships[nodes[0]].interface)
    template.freeze_cargo()
    chain = hashlib.sha256()
    sweeps = 0
    mutations = 0

    def sweep() -> None:
        nonlocal sweeps
        if sweeps >= p["sweeps"]:
            sweep_task.stop()
            churn_task.stop()
            return
        for node in nodes:
            chain.update(
                wn.ships[node].knowledge.content_digest().encode())
        chain.update(sim.obs.metrics_digest().encode())
        sweeps += 1

    def churn() -> None:
        # One new fact on one ship + one shuttle in flight: exactly one
        # KB goes dirty, and the metrics stamp advances.
        nonlocal mutations
        ship = wn.ships[nodes[mutations % len(nodes)]]
        ship.record_fact("bench-churn", f"churn-{mutations}")
        shuttle = template.clone()
        shuttle.created_at = sim.now
        wn.ships[template.src].send_toward(shuttle)
        mutations += 1

    sweep_task = sim.every(0.1, sweep)
    churn_task = sim.every(1.0, churn)
    sim.run(until=0.1 * (p["sweeps"] + 4))
    counters = {
        "sweeps": sweeps,
        "mutations": mutations,
        "audit_chain": chain.hexdigest()[:16],
        "facts": sum(len(wn.ships[n].knowledge) for n in nodes),
        "events_executed": sim.events_executed,
        "final_time": round(sim.now, 9),
        "peak_agenda_depth": sim.peak_agenda_depth,
    }
    work = {"events": sim.events_executed,
            "shuttles": sweeps * len(nodes)}
    return counters, work


ScenarioFn = Callable[[int, str], Tuple[Dict[str, Any], Dict[str, Any]]]

#: name -> (function, one-line description).
SCENARIOS: Dict[str, Tuple[ScenarioFn, str]] = {
    "event-loop": (scenario_event_loop,
                   "kernel churn: timer chains + lazy cancellations"),
    "shuttle-storm": (scenario_shuttle_storm,
                      "role-shuttle clones docking across a quiet grid"),
    "jet-flood": (scenario_jet_flood,
                  "self-replicating jets sweeping the grid"),
    "arq-storm": (scenario_arq_storm,
                  "reliable transport retransmitting over a lossy fabric"),
    "admission-dock": (scenario_admission_dock,
                       "payload-identical clones through the admission "
                       "gate"),
    "nomadic": (scenario_nomadic,
                "nomadic user firing task capsules along a route"),
    "audit-sweep": (scenario_audit_sweep,
                    "periodic integrity digests over slowly-changing "
                    "stores"),
    "shard-scaling": (scenario_shard_scaling,
                      "admission-heavy quanta pumped node-to-node; the "
                      "partitioned-execution macro-benchmark"),
}

#: name -> ShardWorkload class, for scenarios that can run partitioned
#: (``repro bench --workers K``).  Everything else is single-shard only
#: and trivially worker-invariant.
SHARD_WORKLOADS: Dict[str, type] = {
    "shuttle-storm": ShuttleStormWorkload,
    "jet-flood": JetFloodWorkload,
    "shard-scaling": ShardScalingWorkload,
}
