"""Free-list object pools for the hot kernel/capsule allocations.

Beyond ``cow_clone`` (which removes *construction work*), the remaining
allocation cost on the hot paths is the allocator itself: every
simulated delivery builds an :class:`~repro.substrates.sim.events.Event`
and every retransmission/replication builds a
:class:`~repro.core.shuttle.Shuttle`/:class:`~repro.core.shuttle.Jet`.
The ``object_pool`` switch recycles those objects through per-class
free lists instead of round-tripping them through the allocator.

Parity contract
---------------
Reuse must be observationally identical to fresh construction:

* Re-initialization draws from the exact same id counters (``Event``
  seq, packet ids, ployon ids) as ``__init__`` — one acquire consumes
  exactly the counter draws a fresh construction would, so every run
  digest and the sanitize tape are byte-identical with the pool on or
  off.
* An object is released only when the releasing site can prove it holds
  the last reference (``sys.getrefcount`` guard at the call site) —
  anything retained (a :class:`PeriodicTask`'s armed event, a DLQ'd
  template, an in-flight forward) is simply never recycled.
* Released objects are scrubbed (callbacks/cargo refs dropped) so the
  free list cannot keep dead object graphs alive.

Fork/shard safety: the free lists below are module globals, like the
id counters they mirror.  A shard worker fork-inherits a copy and
recycles through it independently; pooled objects are by definition
unreferenced, so inherited free-list contents are plain spare memory —
they carry no cross-shard state and never affect worker digests (each
acquire re-draws its ids in the worker's own counter order).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Type


class FreeList:
    """A bounded LIFO free list for one class (diagnostics included)."""

    __slots__ = ("items", "capacity", "hits", "misses", "recycled",
                 "dropped")

    def __init__(self, capacity: int = 4096):
        self.items: List[object] = []
        self.capacity = int(capacity)
        self.hits = 0
        self.misses = 0
        self.recycled = 0
        self.dropped = 0

    def grab(self) -> Optional[object]:
        """A recycled instance, or ``None`` (caller constructs fresh)."""
        items = self.items
        if items:
            self.hits += 1
            return items.pop()
        self.misses += 1
        return None

    def put(self, obj: object) -> bool:
        """Park a proven-unreferenced, already-scrubbed instance."""
        items = self.items
        if len(items) < self.capacity:
            items.append(obj)
            self.recycled += 1
            return True
        self.dropped += 1
        return False

    def clear(self) -> None:
        del self.items[:]

    def stats(self) -> Dict[str, int]:
        return {"size": len(self.items), "hits": self.hits,
                "misses": self.misses, "recycled": self.recycled,
                "dropped": self.dropped}


# Fork-inherited free lists (see module docstring): recycled spare
# objects only — no simulation state, no digest influence.
# via: ignore[VIA013]
event_pool = FreeList(capacity=8192)
# via: ignore[VIA013] see event_pool declaration above
shuttle_pool = FreeList(capacity=4096)
# via: ignore[VIA013] see event_pool declaration above
jet_pool = FreeList(capacity=4096)

#: Release-site dispatch: exact type -> free list.  Populated by the
#: owning modules at import time (``repro.core.shuttle``); keeps the
#: physical substrate free of imports from ``core``.
RECYCLABLE: Dict[Type, FreeList] = {}


def register(cls: Type, free_list: FreeList) -> None:
    """Declare ``cls`` recyclable through ``free_list`` (exact type)."""
    RECYCLABLE[cls] = free_list


def clear_all() -> None:
    """Drop every pooled instance (tests / memory pressure)."""
    event_pool.clear()
    shuttle_pool.clear()
    jet_pool.clear()


def stats() -> Dict[str, Dict[str, int]]:
    """Per-pool diagnostics for BENCH JSON / obs export."""
    return {"event": event_pool.stats(), "shuttle": shuttle_pool.stats(),
            "jet": jet_pool.stats()}
