"""Canonical digests for benchmark results.

A scenario's *run digest* is the acceptance bar of the whole perf plane:
it folds only machine-independent quantities (event counts, shuttle
counts, simulated times, deterministic counters) into a sha256, so

* the same (scenario, seed, scale) must produce the same digest on any
  machine, on any day, with any subset of optimizations enabled, and
* a committed baseline's digests stay comparable forever, unlike its
  wall-clock numbers.

The canonical form is the repo-wide idiom (see
:mod:`repro.resilience.chaos`): ``json.dumps(payload, sort_keys=True,
default=repr)`` hashed with sha256, truncated to 16 hex chars.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any, Dict

from ..substrates.sim.rng import active_tape


def canonical_digest(payload: Any) -> str:
    """sha256[:16] of the canonical JSON encoding of ``payload``."""
    text = json.dumps(payload, sort_keys=True, default=repr)
    return hashlib.sha256(text.encode()).hexdigest()[:16]


def run_digest(scenario: str, seed: int, scale: str,
               counters: Dict[str, Any]) -> str:
    """The digest of one scenario run.

    ``counters`` must hold only deterministic, machine-independent
    values — the scenario implementations guarantee that (no wall
    times, no host state, floats rounded to fixed precision).
    """
    digest = canonical_digest({"scenario": scenario, "seed": seed,
                               "scale": scale, "counters": counters})
    tape = active_tape()
    if tape is not None:
        tape.record_merge(f"run:{scenario}:{seed}:{scale}", digest)
    return digest


def round_floats(value: Any, digits: int = 9) -> Any:
    """Round every float in a nested structure to ``digits`` places.

    Simulated-time aggregates (mean latencies etc.) are deterministic,
    but summation order inside a dict comprehension could differ across
    Python builds at the last ulp; fixed rounding removes that footgun
    before the value enters a digest.
    """
    if isinstance(value, float):
        return round(value, digits)
    if isinstance(value, dict):
        return {k: round_floats(v, digits) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [round_floats(v, digits) for v in value]
    return value
