"""Deterministic topology partitioning for sharded execution.

:func:`partition` splits a ship graph into K balanced, connected-ish
shards by greedy BFS growth — a pure function of ``(topology, k,
seed)``: same inputs, byte-identical :class:`ShardPlan`, on every host
and in every process.  The plan also extracts the *lookahead* — the
minimum latency over cut links — which bounds how far shards may run
between barriers without missing a cross-shard arrival (conservative
synchronization: a packet sent at ``t`` crosses no sooner than
``t + lookahead``).

Balance guarantee: the requested K is clamped to an *effective* K
(``k' = k`` when it divides the node count evenly, else
``min(k, n // 2)``), so shard sizes differ by at most one with a floor
of two nodes — ``max/min <= 1.5`` always holds for K >= 2 plans.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Tuple

from ..substrates.phys.topology import Topology

NodeId = Hashable


class ShardPlan:
    """The partitioning of one topology into K shards.

    Plain data (no topology reference) so plans pickle cheaply into
    worker processes and print directly from the CLI.
    """

    __slots__ = ("k", "requested_k", "assignment", "shards", "cut_links",
                 "lookahead", "edge_cut", "seed")

    def __init__(self, k: int, requested_k: int,
                 assignment: Dict[NodeId, int],
                 shards: List[Tuple[NodeId, ...]],
                 cut_links: List[Tuple[NodeId, NodeId, str, float]],
                 seed: int):
        self.k = k
        self.requested_k = requested_k
        self.assignment = assignment
        self.shards = shards
        #: (a, b, link_name, latency) for every link crossing shards.
        self.cut_links = cut_links
        self.edge_cut = len(cut_links)
        self.lookahead = (min(lat for _, _, _, lat in cut_links)
                          if cut_links else float("inf"))
        self.seed = seed

    @property
    def balance(self) -> float:
        """max/min shard size (1.0 is perfect)."""
        sizes = [len(s) for s in self.shards]
        return max(sizes) / min(sizes) if sizes and min(sizes) else 1.0

    def shard_of(self, node: NodeId) -> int:
        return self.assignment[node]

    def to_dict(self) -> Dict:
        return {
            "k": self.k,
            "requested_k": self.requested_k,
            "seed": self.seed,
            "shards": [[repr(n) for n in shard] for shard in self.shards],
            "shard_sizes": [len(s) for s in self.shards],
            "balance": round(self.balance, 4),
            "edge_cut": self.edge_cut,
            "lookahead": (self.lookahead
                          if self.lookahead != float("inf") else None),
            "cut_links": [{"a": repr(a), "b": repr(b), "link": name,
                           "latency": lat}
                          for a, b, name, lat in self.cut_links],
        }

    def __repr__(self) -> str:
        sizes = "+".join(str(len(s)) for s in self.shards)
        return (f"<ShardPlan k={self.k} sizes={sizes} "
                f"edge_cut={self.edge_cut} lookahead={self.lookahead:.4g}>")


def effective_k(n: int, k: int) -> int:
    """Clamp the requested shard count so balance stays within 1.5.

    ``k`` is kept when it divides ``n`` evenly (perfect balance);
    otherwise it is clamped to ``n // 2`` so every shard holds at least
    two nodes — sizes then differ by at most one over a floor of two,
    bounding max/min at 1.5.
    """
    if k <= 1 or n <= 1:
        return 1
    if k <= n and n % k == 0:
        return k
    return max(1, min(k, n // 2))


def partition(topology: Topology, k: int, seed: int = 0) -> ShardPlan:
    """Split ``topology`` into (at most) ``k`` balanced shards.

    Greedy BFS growth: shard ``i`` grows from the lowest-``repr``
    unassigned node (the sorted node list is rotated by ``seed`` so
    different seeds explore different cuts), absorbing the smallest
    unassigned frontier neighbour until the shard reaches its target
    size.  Disconnected leftovers are swept into the last shard's
    budget, so every node is always assigned.
    """
    nodes = sorted(topology.nodes, key=repr)
    n = len(nodes)
    if n == 0:
        return ShardPlan(1, k, {}, [()], [], seed)
    rotation = seed % n
    ordered = nodes[rotation:] + nodes[:rotation]
    k_eff = effective_k(n, k)
    base, extra = divmod(n, k_eff)
    targets = [base + (1 if i < extra else 0) for i in range(k_eff)]

    assignment: Dict[NodeId, int] = {}
    for shard_index in range(k_eff):
        start = next((node for node in ordered if node not in assignment),
                     None)
        if start is None:
            break
        shard_nodes = [start]
        assignment[start] = shard_index
        frontier = [start]
        while len(shard_nodes) < targets[shard_index]:
            candidates = sorted(
                {peer for node in frontier
                 for peer in topology.neighbors(node)
                 if peer not in assignment},
                key=repr)
            if not candidates:
                # Disconnected component: jump to the next unassigned
                # node in rotation order and keep filling the budget.
                start = next((node for node in ordered
                              if node not in assignment), None)
                if start is None:
                    break
                candidates = [start]
            chosen = candidates[0]
            assignment[chosen] = shard_index
            shard_nodes.append(chosen)
            frontier.append(chosen)

    # Sweep any stragglers (happens only when targets were exhausted
    # early by disconnected pockets) into the last shard.
    for node in ordered:
        if node not in assignment:
            assignment[node] = k_eff - 1

    shards: List[List[NodeId]] = [[] for _ in range(k_eff)]
    for node in nodes:
        shards[assignment[node]].append(node)
    shard_tuples = [tuple(sorted(s, key=repr)) for s in shards]

    cut_links: List[Tuple[NodeId, NodeId, str, float]] = []
    seen = set()
    for node in nodes:
        for peer in topology.neighbors(node):
            if assignment[node] == assignment.get(peer):
                continue
            link = topology.link(node, peer)
            if link.name in seen:
                continue
            seen.add(link.name)
            a, b = sorted((node, peer), key=repr)
            cut_links.append((a, b, link.name, link.latency))
    cut_links.sort(key=lambda c: c[2])
    return ShardPlan(k_eff, k, assignment, shard_tuples, cut_links, seed)
