"""The conservative epoch-synchronized shard executor.

Two backends behind one API:

``inline``
    Round-robin over the K shard replicas in one process — the
    always-available determinism oracle.  Handoff batches take the
    same pickle round-trip the multiprocessing transport uses, so the
    two backends exercise byte-identical semantics.
``mp``
    One forked worker per shard, handoff batches exchanged over pipes.
    Real multi-core speedup; every digest must equal the inline (and
    the single-shard) run.

Epoch protocol
--------------
With ``L`` = the plan's lookahead (minimum latency over cut links),
every shard runs ``run(until=T_n)`` for epoch ends ``T_n = n * L``.  A
packet sent at ``t in (T_{n-1}, T_n]`` cannot arrive across a shard
boundary sooner than ``t + L > T_n``, so handoffs collected at barrier
``n`` always inject strictly into the future of every shard — no shard
ever sees an event earlier than its clock (conservative PDES, no
rollback).  Batches are merged in canonical ``(time, source shard,
send order)`` order before injection so event tie-breaking at equal
timestamps is identical no matter how many shards contributed.

A workload is *sharded* only when its scenario opts in (see
``repro.perf.scenarios.SHARD_WORKLOADS``); everything else falls back
to the single-shard path, where ``--workers K`` is digest-trivially
invariant by construction.
"""

from __future__ import annotations

import pickle
from typing import Any, Dict, FrozenSet, Hashable, List, Optional, Tuple

from .fabric import Handoff, ShardFabric
from .partition import ShardPlan, partition

NodeId = Hashable


class ShardWorkload:
    """Base protocol for a scenario that can execute sharded.

    Subclasses are plain picklable data (``seed``, ``scale``, derived
    params) plus pure methods — a forked worker reconstructs the whole
    world from the instance alone.  Contract:

    * :meth:`build` constructs the **full** network replica —
      byte-identical construction in every shard — wiring a
      :class:`ShardFabric` that owns ``owned`` (``None`` = everything,
      the single-shard oracle).
    * :meth:`setup` installs event sources (drivers) **only** for
      owned nodes.
    * :meth:`collect` returns summable numeric partials over owned
      ships; the executor sums them across shards.
    * :meth:`finalize` maps the summed totals to the scenario's
      ``(counters, work)`` — a pure function, so the K-shard digest
      can only equal the single-shard digest if every partial does.
    """

    name = "workload"
    #: Pickle-boundary contract (VIA012): the instance crosses the
    #: executor pipe, so the whole chain stays __slots__-closed.
    __slots__ = ("seed", "scale")

    def __init__(self, seed: int, scale: str):
        self.seed = int(seed)
        self.scale = scale

    def topology(self):
        raise NotImplementedError

    def horizon(self) -> float:
        raise NotImplementedError

    def build(self, owned: Optional[FrozenSet[NodeId]] = None
              ) -> Dict[str, Any]:
        raise NotImplementedError

    def setup(self, ctx: Dict[str, Any],
              owned: Optional[FrozenSet[NodeId]]) -> None:
        raise NotImplementedError

    def collect(self, ctx: Dict[str, Any],
                owned: Optional[FrozenSet[NodeId]]) -> Dict[str, Any]:
        raise NotImplementedError

    def finalize(self, totals: Dict[str, Any]
                 ) -> Tuple[Dict[str, Any], Dict[str, int]]:
        raise NotImplementedError


def shard_fabric_factory(owned: Optional[FrozenSet[NodeId]]):
    """A ``fabric_factory`` for :class:`~repro.core.wandering_network.
    WanderingNetwork` producing a boundary-aware fabric, or the plain
    fabric when ``owned`` is ``None`` (the oracle path)."""
    if owned is None:
        return None

    def factory(sim, topology, loss_rate=0.0):
        return ShardFabric(sim, topology, loss_rate=loss_rate, owned=owned)
    return factory


def run_single(workload: ShardWorkload
               ) -> Tuple[Dict[str, Any], Dict[str, int]]:
    """The single-shard oracle: build once, run to the horizon."""
    ctx = workload.build(owned=None)
    workload.setup(ctx, owned=None)
    ctx["sim"].run(until=workload.horizon())
    totals = workload.collect(ctx, owned=None)
    return workload.finalize(totals)


def _arm_obs(ctx: Dict[str, Any], shard_index: int):
    """Enable one replica's observability *after* construction.

    Every shard builds the full network, so construction-time
    emissions would be counted K times if collection started earlier —
    arming post-build is what makes the merged counter sums
    K-invariant.  The tracer is rebased onto the shard's disjoint id
    range so merged spans (and the trace contexts crossing handoff
    boundaries inside ``packet.meta``) stay globally unambiguous.
    """
    from ..obs.snapshot import SHARD_ID_STRIDE
    obs = ctx["sim"].obs.enable()
    obs.shard = shard_index
    obs.tracer.rebase_ids(shard_index * SHARD_ID_STRIDE)
    return obs


def run_sharded(workload: ShardWorkload, workers: int,
                backend: str = "inline", obs: bool = False,
                recovery: Optional[Any] = None
                ) -> Tuple[Dict[str, Any], Dict[str, int], Dict[str, Any]]:
    """Execute ``workload`` over ``workers`` shards.

    Returns ``(counters, work, stats)`` where counters/work are
    byte-identical to :func:`run_single` and ``stats`` describes the
    parallel execution (never folded into digests).

    With ``obs=True`` each replica collects metrics/spans/profiles,
    the executor snapshots them at collect time (shipped over the
    existing pipes for the mp backend), merges them in canonical
    shard-index order, and attaches the resulting
    :class:`~repro.obs.snapshot.MergedObs` — plus the per-epoch
    timeline — as ``stats["obs"]``.  Observability never draws RNG or
    schedules events, so ``obs=True`` leaves counters and digests
    byte-identical to an obs-off run.

    ``recovery`` (a :class:`~repro.shard.recovery.RecoveryConfig`, or
    ``True`` for the defaults) enables the fault-tolerant mp backend:
    worker supervision, epoch journaling and digest-identical crash
    recovery (see :mod:`repro.shard.supervisor`).  Ignored for the
    inline backend, which has no processes to lose.
    """
    if backend not in ("inline", "mp"):
        raise ValueError(f"unknown shard backend {backend!r} "
                         "(known: inline, mp)")
    plan = partition(workload.topology(), workers, seed=workload.seed)
    if plan.k <= 1 or plan.lookahead <= 0.0:
        stats = {
            "mode": "single", "k": 1, "requested_k": workers,
            "backend": backend, "barriers": 0, "handoffs": 0,
            "reason": ("k=1" if plan.k <= 1 else "zero-lookahead"),
        }
        if not obs:
            counters, work = run_single(workload)
            return counters, work, stats
        from ..obs.snapshot import ObsSnapshot, merge_snapshots
        ctx = workload.build(owned=None)
        _arm_obs(ctx, 0)
        workload.setup(ctx, owned=None)
        ctx["sim"].run(until=workload.horizon())
        totals = workload.collect(ctx, owned=None)
        counters, work = workload.finalize(totals)
        merged = merge_snapshots([ObsSnapshot.capture(ctx["sim"].obs,
                                                      shard=0)])
        stats["obs"] = merged
        return counters, work, stats
    if backend == "mp":
        if recovery:
            from .recovery import RecoveryConfig
            from .supervisor import run_supervised
            config = (recovery if isinstance(recovery, RecoveryConfig)
                      else RecoveryConfig())
            return run_supervised(workload, plan, obs=obs,
                                  recovery=config)
        return _run_mp(workload, plan, obs=obs)
    return _run_inline(workload, plan, obs=obs)


# ----------------------------------------------------------------------
# the canonical barrier merge
# ----------------------------------------------------------------------

def _epoch_ends(horizon: float, lookahead: float) -> List[float]:
    """Barrier times: multiples of the lookahead, horizon-terminated.

    Zero (or negative) lookahead admits no conservative window — the
    loop could never advance — so it is rejected here rather than
    spinning; :func:`run_sharded` routes such plans to the single-shard
    path before ever computing epochs.
    """
    if lookahead <= 0:
        raise ValueError(
            f"lookahead must be positive, got {lookahead!r} "
            "(zero-lookahead plans cannot run the epoch protocol)")
    ends = []
    t = 0.0
    step = lookahead if lookahead != float("inf") else horizon
    while t < horizon:
        t = min(horizon, t + step)
        ends.append(t)
    return ends


def _route(plan: ShardPlan,
           outboxes: List[List[Handoff]]) -> Dict[int, List[Handoff]]:
    """Merge per-shard outboxes into per-destination injection batches
    in canonical ``(time, source shard, send order)`` order."""
    tagged = []
    for shard_index, outbox in enumerate(outboxes):
        for order, handoff in enumerate(outbox):
            tagged.append((handoff.time, shard_index, order, handoff))
    tagged.sort(key=lambda entry: entry[:3])
    batches: Dict[int, List[Handoff]] = {}
    for _, _, _, handoff in tagged:
        dest = plan.assignment[handoff.to_node]
        batches.setdefault(dest, []).append(handoff)
    return batches


def _sum_partials(partials: List[Dict[str, Any]]) -> Dict[str, Any]:
    totals: Dict[str, Any] = {}
    for partial in partials:
        for key, value in partial.items():
            totals[key] = totals.get(key, 0) + value
    return totals


# ----------------------------------------------------------------------
# inline backend (the determinism oracle)
# ----------------------------------------------------------------------

def _run_inline(workload: ShardWorkload, plan: ShardPlan, obs: bool = False
                ) -> Tuple[Dict[str, Any], Dict[str, int], Dict[str, Any]]:
    import time
    shards = []
    for shard_index in range(plan.k):
        owned = frozenset(plan.shards[shard_index])
        ctx = workload.build(owned=owned)
        if obs:
            _arm_obs(ctx, shard_index)
        workload.setup(ctx, owned=owned)
        shards.append((owned, ctx))
    handoffs = 0
    barriers = 0
    worker_cpu_s = [0.0] * plan.k
    epoch_records: List[Dict[str, Any]] = []
    prev_events = [0] * plan.k
    epoch_start = 0.0
    for epoch_end in _epoch_ends(workload.horizon(), plan.lookahead):
        epoch_cpu = [0.0] * plan.k
        for shard_index, (_, ctx) in enumerate(shards):
            t0 = time.perf_counter()  # via: ignore[VIA003] per-shard cost accounting; never digest-visible
            ctx["sim"].run(until=epoch_end)
            epoch_cpu[shard_index] = time.perf_counter() - t0  # via: ignore[VIA003] per-shard cost accounting; never digest-visible
            worker_cpu_s[shard_index] += epoch_cpu[shard_index]
            sim = ctx["sim"]
            if sim.obs.on:
                sim.obs.shard_barriers.inc()
                if sim._flight is not None:
                    sim._flight.note("barrier", epoch_end,
                                     f"epoch#{barriers}")
        batches = _route(plan, [ctx["fabric"].drain_outbox()
                                for _, ctx in shards])
        epoch_handoffs = 0
        for dest, batch in sorted(batches.items()):
            # The same wire format the mp transport uses, so inline is
            # an exact oracle for pickled handoff semantics.
            payload = pickle.loads(pickle.dumps(batch))
            shards[dest][1]["fabric"].inject(payload)
            epoch_handoffs += len(batch)
        handoffs += epoch_handoffs
        if obs:
            from ..obs.timeline import make_epoch_record
            events = [ctx["sim"].events_executed for _, ctx in shards]
            epoch_records.append(make_epoch_record(
                barriers, epoch_start, epoch_end, epoch_handoffs,
                [e - p for e, p in zip(events, prev_events)], epoch_cpu))
            prev_events = events
        barriers += 1
        epoch_start = epoch_end
    partials = [workload.collect(ctx, owned) for owned, ctx in shards]
    counters, work = workload.finalize(_sum_partials(partials))
    stats = _stats(plan, "inline", barriers, handoffs,
                   [p.get("events_executed", 0) for p in partials],
                   worker_cpu_s)
    if obs:
        from ..obs.snapshot import ObsSnapshot, merge_snapshots
        merged = merge_snapshots(
            [ObsSnapshot.capture(ctx["sim"].obs, shard=i)
             for i, (_, ctx) in enumerate(shards)])
        merged.add_epochs(epoch_records)
        merged.add_shard_stats(worker_cpu_s, 0.0)
        stats["obs"] = merged
    return counters, work, stats


# ----------------------------------------------------------------------
# mp backend (forked workers, piped handoffs)
# ----------------------------------------------------------------------

def _worker_main(conn, workload_bytes: bytes, plan: ShardPlan,
                 shard_index: int, obs: bool = False) -> None:
    """One shard in its own process: build, then serve the barrier
    protocol — inject, run to the epoch end, return the outbox (plus
    the running event/CPU counters the epoch timeline needs).  With
    ``obs`` on, the collect reply carries the worker's full
    :class:`~repro.obs.snapshot.ObsSnapshot` back over the pipe.

    A ``("replay", entries, verify)`` message (sent by the supervisor
    to a freshly forked replacement, see :mod:`repro.shard.supervisor`)
    fast-forwards this replica through the journaled epoch history:
    each entry's injection batch is unpickled, injected and run to its
    barrier, and the resulting outbox is *discarded* — the original
    worker already shipped those handoffs before it died.  With
    ``verify`` on the discarded outboxes are fingerprinted against the
    journaled partial digests, so a replay that diverged is detected at
    the worker, not at the final digest."""
    import time
    workload = pickle.loads(workload_bytes)
    owned = frozenset(plan.shards[shard_index])
    ctx = workload.build(owned=owned)
    if obs:
        _arm_obs(ctx, shard_index)
    workload.setup(ctx, owned=owned)
    sim, fabric = ctx["sim"], ctx["fabric"]
    cpu0 = time.process_time()  # via: ignore[VIA003] per-worker cost accounting; never digest-visible
    barriers = 0
    try:
        while True:
            message = conn.recv()
            kind = message[0]
            if kind == "epoch":
                _, epoch_end, batch = message
                fabric.inject(batch)
                sim.run(until=epoch_end)
                if sim.obs.on:
                    sim.obs.shard_barriers.inc()
                    if sim._flight is not None:
                        sim._flight.note("barrier", epoch_end,
                                         f"epoch#{barriers}")
                barriers += 1
                cpu_s = time.process_time() - cpu0  # via: ignore[VIA003] per-worker cost accounting; never digest-visible
                conn.send((fabric.drain_outbox(), sim.events_executed,
                           cpu_s))
            elif kind == "replay":
                _, entries, verify = message
                from .recovery import outbox_digest
                mismatches = 0
                for epoch_end, batch_bytes, expected in entries:
                    fabric.inject(pickle.loads(batch_bytes))
                    sim.run(until=epoch_end)
                    if sim.obs.on:
                        sim.obs.shard_barriers.inc()
                        if sim._flight is not None:
                            sim._flight.note("barrier", epoch_end,
                                             f"epoch#{barriers}")
                    barriers += 1
                    outbox = fabric.drain_outbox()
                    if verify and expected is not None \
                            and outbox_digest(outbox) != expected:
                        mismatches += 1
                if sim.obs.on:
                    sim.obs.shard_worker_restarts.inc()
                    if entries:
                        sim.obs.recovery_replay_epochs.inc(len(entries))
                    if sim._flight is not None:
                        sim._flight.note(
                            "replay", sim.now,
                            f"replayed {len(entries)} epoch(s)",
                            mismatches=mismatches)
                conn.send(("replayed", len(entries), mismatches))
            elif kind == "collect":
                cpu_s = time.process_time() - cpu0  # via: ignore[VIA003] per-worker cost accounting; never digest-visible
                snapshot = None
                if obs:
                    from ..obs.snapshot import ObsSnapshot
                    snapshot = ObsSnapshot.capture(sim.obs,
                                                   shard=shard_index)
                conn.send((workload.collect(ctx, owned), cpu_s, snapshot))
            else:  # "quit"
                return
    finally:
        conn.close()


def _recv_deadline(conn, proc, shard_index: int, epoch: int,
                   barrier_time: float,
                   deadline_s: Optional[float] = None):
    """One barrier reply, bounded by ``deadline_s`` (default
    :data:`~repro.shard.recovery.DEFAULT_BARRIER_DEADLINE_S`).

    Raises a typed error instead of blocking forever: a missed deadline
    with a live process is a :class:`~repro.shard.recovery.
    ShardWorkerTimeout` (stall), a dead process or EOF on the pipe is a
    :class:`~repro.shard.recovery.ShardWorkerCrash` — both even when
    recovery is disabled, so a hung worker can never wedge the parent.
    """
    from .recovery import (DEFAULT_BARRIER_DEADLINE_S, ShardWorkerCrash,
                           ShardWorkerTimeout)
    if deadline_s is None:
        deadline_s = DEFAULT_BARRIER_DEADLINE_S
    if not conn.poll(deadline_s):
        if proc.is_alive():
            raise ShardWorkerTimeout(shard_index, epoch, barrier_time,
                                     deadline_s)
        raise ShardWorkerCrash(shard_index, epoch, barrier_time,
                               proc.exitcode)
    try:
        return conn.recv()
    except (EOFError, BrokenPipeError, OSError) as exc:
        proc.join(timeout=10.0)
        raise ShardWorkerCrash(shard_index, epoch, barrier_time,
                               proc.exitcode, cause=repr(exc)) from exc


def _shutdown_workers(pipes, procs) -> None:
    """Escalating teardown shared by every mp exit path (success and
    abort): close the parent pipe ends, then ``join`` → ``terminate``
    → ``kill`` → ``join`` each worker, and ``close()`` the process
    handles so no zombies or leaked fds survive.  ``kill`` matters: a
    SIGSTOPped worker shrugs off SIGTERM (it stays pending while the
    process is stopped) but not SIGKILL."""
    for conn in pipes:
        try:
            conn.close()
        except OSError:
            pass
    for proc in procs:
        proc.join(timeout=10.0)
        if proc.is_alive():
            proc.terminate()
            proc.join(timeout=5.0)
        if proc.is_alive():
            proc.kill()
            proc.join(timeout=5.0)
    for proc in procs:
        try:
            proc.close()
        except ValueError:
            pass


def _run_mp(workload: ShardWorkload, plan: ShardPlan, obs: bool = False
            ) -> Tuple[Dict[str, Any], Dict[str, int], Dict[str, Any]]:
    import multiprocessing
    import time
    try:
        mp_ctx = multiprocessing.get_context("fork")
    except ValueError:
        # No fork on this platform: the inline oracle is always exact.
        return _run_inline(workload, plan, obs=obs)
    workload_bytes = pickle.dumps(workload)
    pipes, procs = [], []
    try:
        for shard_index in range(plan.k):
            parent_conn, child_conn = mp_ctx.Pipe()
            proc = mp_ctx.Process(
                target=_worker_main,
                args=(child_conn, workload_bytes, plan, shard_index, obs),
                daemon=True)
            proc.start()
            child_conn.close()
            pipes.append(parent_conn)
            procs.append(proc)
        handoffs = 0
        barriers = 0
        stall_s = 0.0
        epoch_records: List[Dict[str, Any]] = []
        prev_events = [0] * plan.k
        prev_cpu = [0.0] * plan.k
        epoch_start = 0.0
        batches: Dict[int, List[Handoff]] = {}
        for epoch_end in _epoch_ends(workload.horizon(), plan.lookahead):
            for shard_index, conn in enumerate(pipes):
                conn.send(("epoch", epoch_end,
                           batches.get(shard_index, [])))
            t0 = time.perf_counter()  # via: ignore[VIA003] barrier stall is host wall time by definition; never digest-visible
            replies = [_recv_deadline(conn, procs[i], i, barriers,
                                      epoch_end)
                       for i, conn in enumerate(pipes)]
            epoch_stall = time.perf_counter() - t0  # via: ignore[VIA003] barrier stall is host wall time by definition; never digest-visible
            stall_s += epoch_stall
            outboxes = [reply[0] for reply in replies]
            batches = _route(plan, outboxes)
            epoch_handoffs = sum(len(b) for b in batches.values())
            handoffs += epoch_handoffs
            if obs:
                from ..obs.timeline import make_epoch_record
                events = [reply[1] for reply in replies]
                cpu = [reply[2] for reply in replies]
                epoch_records.append(make_epoch_record(
                    barriers, epoch_start, epoch_end, epoch_handoffs,
                    [e - p for e, p in zip(events, prev_events)],
                    [c - p for c, p in zip(cpu, prev_cpu)],
                    epoch_stall))
                prev_events, prev_cpu = events, cpu
            barriers += 1
            epoch_start = epoch_end
        partials = []
        worker_cpu_s = []
        snapshots = []
        for conn in pipes:
            conn.send(("collect",))
        for i, conn in enumerate(pipes):
            partial, cpu_s, snapshot = _recv_deadline(
                conn, procs[i], i, barriers, epoch_start)
            partials.append(partial)
            worker_cpu_s.append(cpu_s)
            if snapshot is not None:
                snapshots.append(snapshot)
        for conn in pipes:
            conn.send(("quit",))
    except (EOFError, BrokenPipeError, OSError) as exc:
        # A send-side pipe failure: attribute it to the first dead
        # worker (the recv side raises typed errors itself).
        from .recovery import ShardWorkerCrash
        dead = next((i for i, p in enumerate(procs)
                     if not p.is_alive()), -1)
        exitcode = procs[dead].exitcode if dead >= 0 else None
        raise ShardWorkerCrash(dead, barriers, epoch_start, exitcode,
                               cause=repr(exc)) from exc
    finally:
        _shutdown_workers(pipes, procs)
    counters, work = workload.finalize(_sum_partials(partials))
    stats = _stats(plan, "mp", barriers, handoffs,
                   [p.get("events_executed", 0) for p in partials],
                   worker_cpu_s)
    stats["barrier_stall_s"] = round(stall_s, 6)
    if obs and snapshots:
        from ..obs.snapshot import merge_snapshots
        merged = merge_snapshots(snapshots)
        merged.add_epochs(epoch_records)
        merged.add_shard_stats(worker_cpu_s, stall_s)
        stats["obs"] = merged
    return counters, work, stats


def _stats(plan: ShardPlan, backend: str, barriers: int, handoffs: int,
           shard_events: List[int],
           worker_cpu_s: Optional[List[float]] = None) -> Dict[str, Any]:
    top = max(shard_events) if shard_events else 0
    mean = (sum(shard_events) / len(shard_events)) if shard_events else 0
    stats = {
        "mode": "sharded",
        "backend": backend,
        "k": plan.k,
        "requested_k": plan.requested_k,
        "shard_sizes": [len(s) for s in plan.shards],
        "balance": round(plan.balance, 4),
        "edge_cut": plan.edge_cut,
        "lookahead": plan.lookahead,
        "barriers": barriers,
        "handoffs": handoffs,
        "shard_events": shard_events,
        #: max/mean events per shard — 1.0 is a perfectly level load.
        "imbalance": round(top / mean, 4) if mean else 1.0,
    }
    if worker_cpu_s:
        # Per-worker compute seconds.  max() is the critical path: on a
        # host with >= K idle cores, wall clock converges to it (plus
        # barrier overhead), so single_wall / max_worker_cpu_s is the
        # measured parallel speedup independent of how many cores the
        # *measuring* host happens to have.
        stats["worker_cpu_s"] = [round(t, 6) for t in worker_cpu_s]
        stats["max_worker_cpu_s"] = round(max(worker_cpu_s), 6)
    return stats
