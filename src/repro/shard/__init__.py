"""repro.shard — deterministic sharded execution.

Partition the Wandering Network across workers with digest-identical
results: a deterministic topology partitioner (:func:`partition`), a
boundary-aware fabric (:class:`ShardFabric`), and a conservative
epoch-synchronized executor (:func:`run_sharded`) with ``inline`` and
``mp`` backends.  The ``mp`` backend is optionally *fault-tolerant*
(:func:`run_supervised`): worker death or stall is detected, the shard
is respawned and replayed from an epoch journal, and the final digest
stays byte-identical to the fault-free run.  See
``docs/PERFORMANCE.md`` ("Sharded execution") and
``docs/RESILIENCE.md`` ("Fault-tolerant sharding").
"""

from .executor import (ShardWorkload, run_sharded, run_single,
                       shard_fabric_factory)
from .fabric import Handoff, ShardFabric
from .partition import ShardPlan, effective_k, partition
from .recovery import (DEFAULT_BARRIER_DEADLINE_S, EpochJournal, Fault,
                       FaultPlan, RecoveryConfig, RestartBudgetExhausted,
                       ShardWorkerCrash, ShardWorkerError,
                       ShardWorkerTimeout, outbox_digest)
from .supervisor import ShardSupervisor, run_supervised

__all__ = [
    "DEFAULT_BARRIER_DEADLINE_S",
    "EpochJournal",
    "Fault",
    "FaultPlan",
    "Handoff",
    "RecoveryConfig",
    "RestartBudgetExhausted",
    "ShardFabric",
    "ShardPlan",
    "ShardSupervisor",
    "ShardWorkerCrash",
    "ShardWorkerError",
    "ShardWorkerTimeout",
    "ShardWorkload",
    "effective_k",
    "outbox_digest",
    "partition",
    "run_sharded",
    "run_single",
    "run_supervised",
    "shard_fabric_factory",
]
