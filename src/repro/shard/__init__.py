"""repro.shard — deterministic sharded execution.

Partition the Wandering Network across workers with digest-identical
results: a deterministic topology partitioner (:func:`partition`), a
boundary-aware fabric (:class:`ShardFabric`), and a conservative
epoch-synchronized executor (:func:`run_sharded`) with ``inline`` and
``mp`` backends.  See ``docs/PERFORMANCE.md`` ("Sharded execution").
"""

from .executor import (ShardWorkload, run_sharded, run_single,
                       shard_fabric_factory)
from .fabric import Handoff, ShardFabric
from .partition import ShardPlan, effective_k, partition

__all__ = [
    "Handoff",
    "ShardFabric",
    "ShardPlan",
    "ShardWorkload",
    "effective_k",
    "partition",
    "run_sharded",
    "run_single",
    "shard_fabric_factory",
]
