"""The shard-aware network fabric.

Every shard (worker) holds a *full replica* of the Wandering Network —
same construction, same ids, same RNG layout — but executes events only
for the ships it owns.  :class:`ShardFabric` is the boundary: a packet
whose next hop lands on a ship owned by another shard is *not*
scheduled locally; the fully-computed in-flight leg (token-bucket wait,
serialization, propagation) becomes a :class:`Handoff` in the outbox,
exchanged at the next epoch barrier and injected into the owning
shard's agenda at its exact arrival time.

Counter parity with the single-shard run is by construction: the send
side does all its accounting (``packets_sent``, bucket state) before
the diversion, and the receive side replays the one ``deliver`` event
the single-shard run would have executed — one event, same name, same
arrival time.
"""

from __future__ import annotations

from typing import FrozenSet, Hashable, Iterable, List, Optional

from ..substrates.phys.fabric import NetworkFabric
from ..substrates.phys.packet import Datagram
from ..substrates.phys.topology import Link, Topology
from ..substrates.sim import Simulator

NodeId = Hashable


class Handoff:
    """One cross-shard in-flight packet leg, frozen at send time."""

    #: Declared pickle-boundary class: instances cross executor pipes
    #: and are journaled for replay (checked by `repro shardcheck`).
    __shard_boundary__ = True
    __slots__ = ("time", "from_node", "to_node", "packet")

    def __init__(self, time: float, from_node: NodeId, to_node: NodeId,
                 packet: Datagram):
        self.time = time
        self.from_node = from_node
        self.to_node = to_node
        self.packet = packet

    def __repr__(self) -> str:
        return (f"<Handoff t={self.time:.6g} "
                f"{self.from_node}->{self.to_node} "
                f"packet={self.packet.packet_id}>")


class ShardFabric(NetworkFabric):
    """A :class:`NetworkFabric` that diverts cross-shard deliveries.

    ``owned=None`` owns everything (identical to the parent class) so
    the same construction path serves the K=1 oracle and K>1 shards.
    """

    def __init__(self, sim: Simulator, topology: Topology,
                 loss_rate: float = 0.0,
                 owned: Optional[Iterable[NodeId]] = None):
        super().__init__(sim, topology, loss_rate=loss_rate)
        self.owned: Optional[FrozenSet[NodeId]] = (
            frozenset(owned) if owned is not None else None)
        #: Cross-shard legs sent this epoch, in send order.
        self.outbox: List[Handoff] = []
        self.handoffs_out = 0
        self.handoffs_in = 0

    def _schedule_delivery(self, link: Link, from_node: NodeId,
                           to_node: NodeId, packet: Datagram,
                           delay: float) -> None:
        if self.owned is None or to_node in self.owned:
            super()._schedule_delivery(link, from_node, to_node, packet,
                                       delay)
            return
        self.outbox.append(Handoff(self.sim.now + delay, from_node,
                                   to_node, packet))
        self.handoffs_out += 1
        obs = self.sim.obs
        if obs.on:
            obs.shard_handoffs.inc(event="out")

    def drain_outbox(self) -> List[Handoff]:
        """Take (and clear) this epoch's cross-shard sends."""
        out, self.outbox = self.outbox, []
        return out

    def inject(self, handoffs: Iterable[Handoff]) -> int:
        """Schedule foreign arrivals at their exact in-flight times.

        The caller supplies the batch already in canonical merge order
        (time, source shard, send order); scheduling in that order
        makes event-seq tie-breaking deterministic regardless of how
        many shards contributed.
        """
        count = 0
        obs = self.sim.obs
        for handoff in handoffs:
            self.sim.call_at(handoff.time, self._deliver_handoff,
                             handoff.from_node, handoff.to_node,
                             handoff.packet, name="deliver")
            count += 1
        self.handoffs_in += count
        if obs.on and count:
            obs.shard_handoffs.inc(count, event="in")
        return count

    def _deliver_handoff(self, from_node: NodeId, to_node: NodeId,
                         packet: Datagram) -> None:
        """The receive half of a diverted send: resolve the local link
        replica and run the standard delivery path."""
        link = self.topology.link(from_node, to_node)
        self._deliver(link, from_node, to_node, packet)
