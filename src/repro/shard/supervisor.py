"""The supervising parent loop for fault-tolerant sharded execution.

:func:`run_supervised` drives the same epoch-barrier protocol as the
plain mp backend, but wraps every protocol step in supervision:

* every epoch's injection batches are journaled *before* the send
  (:class:`~repro.shard.recovery.EpochJournal`), and every worker's
  outbox digest is journaled as its reply arrives;
* worker death (exitcode sentinel / EOF / broken pipe) and stall
  (missed per-barrier reply deadline) are detected, the dead process is
  reaped, and a replacement is forked after a seeded exponential
  backoff;
* the replacement rebuilds its replica from the same workload bytes and
  **replays** the journaled injection history to the current barrier —
  determinism guarantees it reaches the exact state the original had,
  so the barrier protocol resumes and the final K-shard digest is
  byte-identical to the fault-free run;
* when the run-wide restart budget is exhausted the run *degrades*
  deterministically: every worker is killed and the inline oracle
  re-executes the workload from scratch in-process, flagged
  ``degraded`` in stats — never a crash.

Fault injection (:class:`~repro.shard.recovery.FaultPlan`) is applied
by the supervisor itself at exact protocol points, so chaos campaigns
are reproducible: ``kill`` lands right before the epoch send (death
detected immediately), ``stall`` suspends the worker so the reply
deadline trips, ``kill-after-reply`` lands between barriers (death
detected at the next send or at collect).

With ``obs`` on, the supervisor keeps its own flight recorder and span
tracer (shard id ``K``, span ids rebased past every worker's range) so
restarts, replays, checkpoints and degradation appear in the merged
telemetry next to the worker-side streams.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
import signal
import time
from typing import Any, Dict, List, Optional, Tuple

from .executor import (ShardWorkload, _epoch_ends, _route, _run_inline,
                       _stats, _sum_partials, _worker_main)
from .partition import ShardPlan
from .recovery import (FAULT_KILL, FAULT_KILL_AFTER_REPLY, FAULT_STALL,
                       EpochJournal, RecoveryConfig,
                       RestartBudgetExhausted, ShardWorkerCrash,
                       ShardWorkerError, ShardWorkerTimeout,
                       outbox_digest)


class _Worker:
    """One live shard worker: its process, pipe and generation."""

    __slots__ = ("shard_index", "proc", "conn", "generation")

    def __init__(self, shard_index: int, proc, conn, generation: int):
        self.shard_index = shard_index
        self.proc = proc
        self.conn = conn
        self.generation = generation


class ShardSupervisor:
    """Owns the worker pool, the epoch journal and the restart ladder."""

    def __init__(self, workload: ShardWorkload, plan: ShardPlan,
                 obs: bool, config: RecoveryConfig, mp_ctx):
        self.workload = workload
        self.plan = plan
        self.obs = obs
        self.config = config
        self.mp_ctx = mp_ctx
        self.workload_bytes = pickle.dumps(workload)
        self.journal = EpochJournal(plan.k, spill_dir=config.spill_dir)
        self.workers: List[Optional[_Worker]] = [None] * plan.k
        self.backoff = config.backoff_rng(workload.seed)
        # recovery accounting
        self.restarts = 0
        self.restarts_by_shard = [0] * plan.k
        self.generations = [0] * plan.k
        self.stall_kills = 0
        self.crashes = 0
        self.replayed_epochs = 0
        self.digest_mismatches = 0
        self.backoff_s = 0.0
        # barrier position (for error attribution)
        self.epoch = 0
        self.epoch_end = 0.0
        self._prev_cpu = [0.0] * plan.k
        # parent-plane telemetry
        self.flight = None
        self.tracer = None
        if obs:
            from ..obs.flight import FlightRecorder
            from ..obs.snapshot import SHARD_ID_STRIDE
            from ..obs.spans import SpanTracer
            self.flight = FlightRecorder(capacity=256)
            self.tracer = SpanTracer()
            self.tracer.rebase_ids(plan.k * SHARD_ID_STRIDE)

    # -- telemetry ---------------------------------------------------------
    def _note(self, kind: str, t: float, what: str, **fields: Any) -> None:
        if self.flight is not None:
            self.flight.note(kind, t, what, **fields)

    # -- worker lifecycle --------------------------------------------------
    def _spawn(self, shard_index: int) -> _Worker:
        parent_conn, child_conn = self.mp_ctx.Pipe()
        proc = self.mp_ctx.Process(
            target=_worker_main,
            args=(child_conn, self.workload_bytes, self.plan, shard_index,
                  self.obs),
            daemon=True)
        proc.start()
        child_conn.close()
        self.generations[shard_index] += 1
        worker = _Worker(shard_index, proc, parent_conn,
                         self.generations[shard_index])
        self.workers[shard_index] = worker
        return worker

    def _reap(self, worker: _Worker) -> None:
        try:
            worker.conn.close()
        except OSError:
            pass
        proc = worker.proc
        if proc.is_alive():
            proc.kill()
        proc.join(timeout=10.0)
        try:
            proc.close()
        except ValueError:
            pass

    def shutdown(self) -> None:
        """Kill and reap every live worker (idempotent)."""
        for worker in self.workers:
            if worker is not None:
                self._reap(worker)
        self.workers = [None] * self.plan.k

    def close(self) -> None:
        self.shutdown()
        self.journal.close()

    # -- protocol primitives ----------------------------------------------
    def _await(self, worker: _Worker, deadline_s: float,
               barrier_time: float) -> Any:
        """One reply, bounded by ``deadline_s``.  A missed deadline with
        a live process is a *stall* (the worker is killed); a missed
        deadline with a dead process, or EOF on the pipe, is a crash."""
        conn, proc = worker.conn, worker.proc
        if not conn.poll(deadline_s):
            if proc.is_alive():
                self.stall_kills += 1
                proc.kill()
                proc.join(timeout=10.0)
                raise ShardWorkerTimeout(worker.shard_index, self.epoch,
                                         barrier_time, deadline_s)
            self.crashes += 1
            raise ShardWorkerCrash(worker.shard_index, self.epoch,
                                   barrier_time, proc.exitcode)
        try:
            return conn.recv()
        except (EOFError, BrokenPipeError, OSError) as exc:
            proc.join(timeout=10.0)
            self.crashes += 1
            raise ShardWorkerCrash(worker.shard_index, self.epoch,
                                   barrier_time, proc.exitcode,
                                   cause=repr(exc)) from exc

    def _send(self, shard_index: int, message: Tuple,
              barrier_time: float, upto_epoch: int) -> None:
        """Send with crash-on-send recovery: a broken pipe means the
        worker died since the last barrier — revive and resend."""
        try:
            self.workers[shard_index].conn.send(message)
            return
        except (BrokenPipeError, OSError):
            self.crashes += 1
        self._revive(shard_index, upto_epoch, "send-failed", barrier_time)
        self.workers[shard_index].conn.send(message)

    # -- restart ladder ----------------------------------------------------
    def _revive(self, shard_index: int, upto_epoch: int, reason: str,
                barrier_time: float) -> _Worker:
        """Replace the worker for ``shard_index`` and replay it to the
        state at barrier ``upto_epoch``.  Raises
        :class:`RestartBudgetExhausted` when the run-wide budget is
        spent; loops if the replacement itself dies during replay."""
        old = self.workers[shard_index]
        if old is not None:
            self._reap(old)
            self.workers[shard_index] = None
        while True:
            if self.restarts >= self.config.max_restarts:
                raise RestartBudgetExhausted(
                    shard_index, self.epoch, barrier_time,
                    self.config.max_restarts)
            self.restarts += 1
            self.restarts_by_shard[shard_index] += 1
            attempt = self.restarts_by_shard[shard_index]
            # Exponential backoff with jitter from the dedicated seeded
            # stream — even the wall-clock pauses are a pure function of
            # (seed, restart ordinal).
            base = min(self.config.backoff_max_s,
                       self.config.backoff_base_s * (2 ** (attempt - 1)))
            pause = base * (0.5 + 0.5 * self.backoff.random())
            if pause > 0:
                time.sleep(pause)
            self.backoff_s += pause
            worker = self._spawn(shard_index)
            self._note("restart", barrier_time,
                       f"shard{shard_index} gen{worker.generation}",
                       reason=reason, epoch=self.epoch, attempt=attempt)
            span = None
            if self.tracer is not None:
                span = self.tracer.start_trace(
                    "shard.restart", f"shard{shard_index}", barrier_time)
                span.attrs.update(reason=reason, epoch=self.epoch,
                                  generation=worker.generation)
            entries = self.journal.replay_entries(shard_index, upto_epoch)
            replay_span = None
            if self.tracer is not None and span is not None:
                replay_span = self.tracer.start_span(
                    "shard.replay", span.context, f"shard{shard_index}",
                    barrier_time)
                replay_span.attrs["epochs"] = len(entries)
            try:
                worker.conn.send(
                    ("replay", entries, self.config.verify_replay_digests))
                deadline = (self.config.barrier_deadline_s
                            * max(1, len(entries)))
                ack = self._await(worker, deadline, barrier_time)
            except RestartBudgetExhausted:
                raise
            except ShardWorkerError:
                reason = "replay-died"
                continue
            except (BrokenPipeError, OSError):
                self.crashes += 1
                reason = "replay-send-failed"
                continue
            _, replayed, mismatches = ack
            self.replayed_epochs += replayed
            self.digest_mismatches += mismatches
            self._note("replay", barrier_time,
                       f"shard{shard_index} replayed {replayed} epoch(s)",
                       mismatches=mismatches)
            if replay_span is not None:
                replay_span.finish(barrier_time)
                replay_span.attrs["mismatches"] = mismatches
            if span is not None:
                span.finish(barrier_time)
            return worker

    def _revive_dead(self, upto_epoch: int, barrier_time: float) -> None:
        """Pre-send sweep: revive any worker that died between barriers
        (kill-after-reply faults, spontaneous deaths)."""
        for shard_index in range(self.plan.k):
            worker = self.workers[shard_index]
            if worker is None or not worker.proc.is_alive():
                if worker is not None:
                    self.crashes += 1
                self._revive(shard_index, upto_epoch,
                             "died-between-barriers", barrier_time)

    # -- fault injection ---------------------------------------------------
    def _fault_targets(self, fault) -> Optional[_Worker]:
        if not (0 <= fault.shard < self.plan.k):
            return None
        return self.workers[fault.shard]

    def _apply_pre_faults(self, epoch: int, barrier_time: float) -> None:
        """``kill`` and ``stall`` faults land at the top of the barrier,
        before the epoch send — a kill is detected by the pre-send
        sweep, a stall by the reply deadline."""
        faults = self.config.faults
        if faults is None:
            return
        for fault in faults.pending(FAULT_KILL, epoch):
            fault.fired = True
            worker = self._fault_targets(fault)
            if worker is not None and worker.proc.is_alive():
                worker.proc.kill()
                worker.proc.join(timeout=10.0)
                self._note("fault", barrier_time,
                           f"SIGKILL shard{fault.shard}", epoch=epoch)
        for fault in faults.pending(FAULT_STALL, epoch):
            fault.fired = True
            worker = self._fault_targets(fault)
            if worker is not None and worker.proc.is_alive():
                os.kill(worker.proc.pid, signal.SIGSTOP)
                self._note("fault", barrier_time,
                           f"SIGSTOP shard{fault.shard}", epoch=epoch)

    def _apply_post_faults(self, epoch: int, barrier_time: float) -> None:
        """``kill-after-reply`` faults land after the barrier's replies
        were routed — mid-handoff — and are detected at the next send
        (or at collect, for the final barrier)."""
        faults = self.config.faults
        if faults is None:
            return
        for fault in faults.pending(FAULT_KILL_AFTER_REPLY, epoch):
            fault.fired = True
            worker = self._fault_targets(fault)
            if worker is not None and worker.proc.is_alive():
                worker.proc.kill()
                worker.proc.join(timeout=10.0)
                self._note("fault", barrier_time,
                           f"SIGKILL-after-reply shard{fault.shard}",
                           epoch=epoch)

    # -- the supervised barrier loop ---------------------------------------
    def run(self) -> Tuple[Dict[str, Any], Dict[str, int], Dict[str, Any]]:
        plan, config = self.plan, self.config
        ends = _epoch_ends(self.workload.horizon(), plan.lookahead)
        if config.faults is not None:
            config.faults.normalize(len(ends))
        for shard_index in range(plan.k):
            self._spawn(shard_index)
        handoffs = 0
        stall_s = 0.0
        epoch_records: List[Dict[str, Any]] = []
        prev_events = [0] * plan.k
        epoch_start = 0.0
        batches: Dict[int, List[Any]] = {}
        for epoch, epoch_end in enumerate(ends):
            self.epoch, self.epoch_end = epoch, epoch_end
            self._apply_pre_faults(epoch, epoch_end)
            self._revive_dead(epoch, epoch_end)
            self.journal.record_send(epoch, epoch_end, batches)
            for shard_index in range(plan.k):
                self._send(shard_index,
                           ("epoch", epoch_end,
                            batches.get(shard_index, [])),
                           epoch_end, epoch)
            t0 = time.perf_counter()  # via: ignore[VIA003] barrier stall is host wall time by definition; never digest-visible
            replies = [self._barrier_reply(i, epoch_end,
                                           batches.get(i, []))
                       for i in range(plan.k)]
            epoch_stall = time.perf_counter() - t0  # via: ignore[VIA003] barrier stall is host wall time by definition; never digest-visible
            stall_s += epoch_stall
            outboxes = [reply[0] for reply in replies]
            for shard_index, outbox in enumerate(outboxes):
                self.journal.record_digest(epoch, shard_index,
                                           outbox_digest(outbox))
            batches = _route(plan, outboxes)
            handoffs += sum(len(b) for b in batches.values())
            self._apply_post_faults(epoch, epoch_end)
            if self.obs:
                from ..obs.timeline import make_epoch_record
                events = [reply[1] for reply in replies]
                cpu = [reply[2] for reply in replies]
                epoch_records.append(make_epoch_record(
                    epoch, epoch_start, epoch_end,
                    sum(len(b) for b in batches.values()),
                    [e - p for e, p in zip(events, prev_events)],
                    [max(0.0, c - p)
                     for c, p in zip(cpu, self._prev_cpu)],
                    epoch_stall))
                prev_events = events
                self._prev_cpu = cpu
            epoch_start = epoch_end
            if (config.checkpoint_every
                    and (epoch + 1) % config.checkpoint_every == 0
                    and epoch + 1 < len(ends)):
                nbytes = self.journal.checkpoint(epoch + 1)
                self._note("checkpoint", epoch_end,
                           f"journal compacted below epoch {epoch + 1}",
                           bytes=nbytes)
        # -- collect phase -------------------------------------------------
        horizon = ends[-1] if ends else 0.0
        self.epoch = len(ends)
        self._revive_dead(len(ends), horizon)
        for shard_index in range(plan.k):
            self._send(shard_index, ("collect",), horizon, len(ends))
        partials: List[Dict[str, Any]] = []
        worker_cpu_s: List[float] = []
        snapshots = []
        for shard_index in range(plan.k):
            reply = self._collect_reply(shard_index, horizon, len(ends))
            partial, cpu_s, snapshot = reply
            partials.append(partial)
            worker_cpu_s.append(cpu_s)
            if snapshot is not None:
                snapshots.append(snapshot)
        for worker in self.workers:
            if worker is not None:
                try:
                    worker.conn.send(("quit",))
                except (BrokenPipeError, OSError):
                    pass
        counters, work = self.workload.finalize(_sum_partials(partials))
        stats = _stats(plan, "mp", len(ends), handoffs,
                       [p.get("events_executed", 0) for p in partials],
                       worker_cpu_s)
        stats["barrier_stall_s"] = round(stall_s, 6)
        stats["supervised"] = True
        recovery = self.recovery_stats()
        stats["recovery"] = recovery
        if self.obs and snapshots:
            from ..obs.snapshot import merge_snapshots
            merged = merge_snapshots(snapshots)
            merged.add_epochs(epoch_records)
            merged.add_shard_stats(worker_cpu_s, stall_s)
            merged.add_recovery(
                recovery,
                flight_records=list(self.flight.to_records(
                    shard=plan.k)) if self.flight else (),
                span_records=list(self.tracer.to_records())
                if self.tracer else ())
            stats["obs"] = merged
        return counters, work, stats

    def _barrier_reply(self, shard_index: int, epoch_end: float,
                       batch: List[Any]) -> Any:
        """One worker's epoch reply, reviving (and re-sending the epoch
        message) as many times as the budget allows."""
        while True:
            try:
                return self._await(self.workers[shard_index],
                                   self.config.barrier_deadline_s,
                                   epoch_end)
            except RestartBudgetExhausted:
                raise
            except ShardWorkerError as exc:
                reason = ("stall" if isinstance(exc, ShardWorkerTimeout)
                          else "crash")
                self._revive(shard_index, self.epoch, reason, epoch_end)
                self._prev_cpu[shard_index] = 0.0
                self.workers[shard_index].conn.send(
                    ("epoch", epoch_end, batch))

    def _collect_reply(self, shard_index: int, horizon: float,
                       epoch_count: int) -> Any:
        while True:
            try:
                return self._await(self.workers[shard_index],
                                   self.config.barrier_deadline_s, horizon)
            except RestartBudgetExhausted:
                raise
            except ShardWorkerError as exc:
                reason = ("stall" if isinstance(exc, ShardWorkerTimeout)
                          else "crash")
                self._revive(shard_index, epoch_count, reason, horizon)
                self._prev_cpu[shard_index] = 0.0
                self.workers[shard_index].conn.send(("collect",))

    # -- accounting --------------------------------------------------------
    def recovery_stats(self, degraded: bool = False) -> Dict[str, Any]:
        faults = self.config.faults
        fired = ([{"kind": f.kind, "barrier": f.barrier, "shard": f.shard}
                  for f in faults.faults if f.fired] if faults else [])
        return {
            "enabled": True,
            "worker_restarts": self.restarts,
            "restarts_by_shard": list(self.restarts_by_shard),
            "stall_kills": self.stall_kills,
            "crashes": self.crashes,
            "replayed_epochs": self.replayed_epochs,
            "partial_digest_mismatches": self.digest_mismatches,
            "checkpoints": self.journal.checkpoints_taken,
            "checkpoint_bytes": self.journal.checkpoint_bytes_total,
            "journal_bytes": self.journal.journal_bytes,
            "backoff_s": round(self.backoff_s, 6),
            "restart_budget": self.config.max_restarts,
            "barrier_deadline_s": self.config.barrier_deadline_s,
            "degraded": degraded,
            "faults_fired": fired,
        }


def run_supervised(workload: ShardWorkload, plan: ShardPlan,
                   obs: bool = False,
                   recovery: Optional[RecoveryConfig] = None
                   ) -> Tuple[Dict[str, Any], Dict[str, int],
                              Dict[str, Any]]:
    """Execute ``workload`` over ``plan`` with worker supervision.

    Counters and work are byte-identical to the fault-free run (and to
    :func:`~repro.shard.executor.run_single`) even when workers are
    killed or stalled mid-run — crash recovery replays journaled
    handoff history into a replacement replica.  When the restart
    budget is exhausted the run degrades to the inline oracle:
    deterministic, flagged ``stats["degraded"] = True``, never a crash.
    """
    config = recovery if recovery is not None else RecoveryConfig()
    try:
        mp_ctx = multiprocessing.get_context("fork")
    except ValueError:
        # No fork on this platform: the inline oracle is always exact.
        counters, work, stats = _run_inline(workload, plan, obs=obs)
        stats["requested_backend"] = "mp"
        stats["supervised"] = True
        return counters, work, stats
    supervisor = ShardSupervisor(workload, plan, obs, config, mp_ctx)
    try:
        return supervisor.run()
    except RestartBudgetExhausted as exc:
        supervisor.shutdown()
        counters, work, stats = _run_inline(workload, plan, obs=obs)
        recovery_stats = supervisor.recovery_stats(degraded=True)
        stats["supervised"] = True
        stats["degraded"] = True
        stats["degrade_reason"] = str(exc)
        stats["requested_backend"] = "mp"
        stats["recovery"] = recovery_stats
        if obs and "obs" in stats:
            stats["obs"].add_recovery(
                recovery_stats,
                flight_records=list(supervisor.flight.to_records(
                    shard=plan.k)) if supervisor.flight else (),
                span_records=list(supervisor.tracer.to_records())
                if supervisor.tracer else ())
        return counters, work, stats
    finally:
        supervisor.close()
