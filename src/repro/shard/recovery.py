"""Fault-tolerant sharded execution: the recovery substrate.

The conservative executor's determinism premise — a worker's state is a
pure function of ``(workload bytes, plan, shard index, injected handoff
history)`` — is exactly what makes crashed workers *recoverable*: a
replacement process that rebuilds the replica and re-injects the same
journaled batches at the same epoch boundaries reaches the same state,
byte for byte.  This module holds the pieces the supervising parent
needs to exploit that:

* typed barrier-protocol errors (:class:`ShardWorkerTimeout`,
  :class:`ShardWorkerCrash`, :class:`RestartBudgetExhausted`) raised by
  the plain mp backend and handled by the supervisor;
* :class:`EpochJournal` — every epoch's per-shard injection batch
  (pickled at send time) plus the worker outbox digests observed at the
  barrier, in memory with optional spill of checkpoint blobs to disk;
* :class:`Checkpoint` — the journal prefix compacted into one pickled
  blob per shard at every ``checkpoint_every`` barriers, bounding the
  journal's per-epoch object overhead and amortizing replay-message
  construction (``checkpoint_bytes`` is the measured cost);
* :class:`FaultPlan` — deterministic process-level fault injection
  (SIGKILL / SIGSTOP at named barriers) for the chaos campaigns and the
  recovery test matrix;
* :class:`RecoveryConfig` — the supervision knobs (per-barrier
  deadline, restart budget, exponential backoff drawn from a dedicated
  seeded RNG stream, checkpoint cadence).

Replay determinism also leans on one process-level invariant: the
supervising parent never *constructs* domain objects mid-run (it only
pickles and unpickles them, which bypasses ``__init__``), so a
replacement forked at restart time inherits the same module-global id
counters the original worker inherited at launch — both replicas draw
identical packet/quantum/genome id sequences.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import random
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..substrates.sim.rng import active_tape, derive_seed

#: Per-barrier reply deadline for the *unsupervised* mp backend: far
#: beyond any legitimate epoch, so it only trips on a genuinely hung
#: worker — but trips instead of blocking ``recv()`` forever.
DEFAULT_BARRIER_DEADLINE_S = 120.0

#: The dedicated stream name feeding restart-backoff jitter.
BACKOFF_STREAM = "shard.recovery.backoff"


# ----------------------------------------------------------------------
# typed barrier-protocol errors
# ----------------------------------------------------------------------

class ShardWorkerError(RuntimeError):
    """One shard worker failed the barrier protocol.

    Subclasses ``RuntimeError`` so callers of the pre-recovery executor
    keep working; carries the shard index, the epoch ordinal and the
    barrier's simulated time so the failure is attributable without
    re-running.
    """

    def __init__(self, message: str, shard_index: int, epoch: int,
                 barrier_time: float):
        super().__init__(message)
        self.shard_index = int(shard_index)
        self.epoch = int(epoch)
        self.barrier_time = float(barrier_time)


class ShardWorkerTimeout(ShardWorkerError):
    """A worker missed its per-barrier reply deadline (stall)."""

    def __init__(self, shard_index: int, epoch: int, barrier_time: float,
                 deadline_s: float):
        super().__init__(
            f"shard worker {shard_index} missed the {deadline_s:g}s reply "
            f"deadline at epoch {epoch} (barrier t={barrier_time:g}); "
            "the worker is stalled, not dead — re-run with "
            "backend='inline' to reproduce deterministically",
            shard_index, epoch, barrier_time)
        self.deadline_s = float(deadline_s)


class ShardWorkerCrash(ShardWorkerError):
    """A worker process died mid-protocol (EOF / broken pipe)."""

    def __init__(self, shard_index: int, epoch: int, barrier_time: float,
                 exitcode: Optional[int], cause: str = ""):
        detail = f" ({cause})" if cause else ""
        super().__init__(
            f"shard worker {shard_index} died at epoch {epoch} "
            f"(barrier t={barrier_time:g}, exitcode={exitcode}){detail}; "
            "re-run with backend='inline' to reproduce deterministically",
            shard_index, epoch, barrier_time)
        self.exitcode = exitcode


class RestartBudgetExhausted(ShardWorkerError):
    """The supervisor ran out of restarts; callers degrade to inline."""

    def __init__(self, shard_index: int, epoch: int, barrier_time: float,
                 budget: int):
        super().__init__(
            f"restart budget ({budget}) exhausted reviving shard "
            f"{shard_index} at epoch {epoch}", shard_index, epoch,
            barrier_time)
        self.budget = int(budget)


# ----------------------------------------------------------------------
# configuration
# ----------------------------------------------------------------------

class RecoveryConfig:
    """Supervision knobs for the fault-tolerant mp backend.

    ``barrier_deadline_s`` bounds every per-barrier reply wait
    (:meth:`multiprocessing.connection.Connection.poll`); a miss is a
    *stall* and the worker is killed and replaced.  ``max_restarts`` is
    the run-wide budget across all shards — exhausting it degrades the
    run to the inline oracle instead of raising.  Backoff before each
    respawn is exponential per shard with jitter drawn from the
    dedicated :data:`BACKOFF_STREAM` seeded stream, so even wall-clock
    pauses are a pure function of ``(seed, restart ordinal)``.
    ``checkpoint_every`` compacts the epoch journal into pickled
    checkpoint blobs every N barriers (0 disables checkpointing);
    ``spill_dir`` writes those blobs to disk instead of holding them in
    memory.  ``faults`` installs a deterministic :class:`FaultPlan`
    (chaos campaigns, tests).
    """

    __slots__ = ("barrier_deadline_s", "max_restarts", "checkpoint_every",
                 "backoff_base_s", "backoff_max_s", "spill_dir",
                 "verify_replay_digests", "faults")

    def __init__(self, barrier_deadline_s: float = 30.0,
                 max_restarts: int = 3, checkpoint_every: int = 8,
                 backoff_base_s: float = 0.05,
                 backoff_max_s: float = 1.0,
                 spill_dir: Optional[str] = None,
                 verify_replay_digests: bool = True,
                 faults: Optional["FaultPlan"] = None):
        if barrier_deadline_s <= 0:
            raise ValueError("barrier_deadline_s must be positive")
        if max_restarts < 0:
            raise ValueError("max_restarts must be >= 0")
        if checkpoint_every < 0:
            raise ValueError("checkpoint_every must be >= 0")
        self.barrier_deadline_s = float(barrier_deadline_s)
        self.max_restarts = int(max_restarts)
        self.checkpoint_every = int(checkpoint_every)
        self.backoff_base_s = float(backoff_base_s)
        self.backoff_max_s = float(backoff_max_s)
        self.spill_dir = spill_dir
        self.verify_replay_digests = bool(verify_replay_digests)
        self.faults = faults

    def backoff_rng(self, seed: int) -> random.Random:
        """The dedicated seeded stream for restart-backoff jitter."""
        return random.Random(derive_seed(seed, BACKOFF_STREAM))

    def __repr__(self) -> str:
        return (f"<RecoveryConfig deadline={self.barrier_deadline_s:g}s "
                f"budget={self.max_restarts} "
                f"checkpoint_every={self.checkpoint_every}>")


# ----------------------------------------------------------------------
# deterministic fault injection (process level)
# ----------------------------------------------------------------------

#: SIGKILL the worker right after the epoch message is sent — it dies
#: mid-epoch, detected while the parent awaits its reply.
FAULT_KILL = "kill"
#: SIGSTOP the worker after the epoch message is sent — it hangs, the
#: per-barrier deadline trips, and the supervisor kills and replaces it.
FAULT_STALL = "stall"
#: SIGKILL the worker *after* its reply was received — the death lands
#: between barriers (mid-handoff), detected at the next send/collect.
FAULT_KILL_AFTER_REPLY = "kill-after-reply"

FAULT_KINDS = (FAULT_KILL, FAULT_STALL, FAULT_KILL_AFTER_REPLY)


class Fault:
    """One scheduled process-level fault: ``kind`` applied to ``shard``
    at epoch ordinal ``barrier`` (negative counts from the final
    barrier, Python-index style: ``-1`` is the last epoch)."""

    __slots__ = ("kind", "barrier", "shard", "fired")

    def __init__(self, kind: str, barrier: int, shard: int):
        if kind not in FAULT_KINDS:
            raise ValueError(f"unknown fault kind {kind!r} "
                             f"(known: {', '.join(FAULT_KINDS)})")
        self.kind = kind
        self.barrier = int(barrier)
        self.shard = int(shard)
        self.fired = False

    def __repr__(self) -> str:
        return (f"<Fault {self.kind} shard={self.shard} "
                f"barrier={self.barrier}{' fired' if self.fired else ''}>")


class FaultPlan:
    """A deterministic schedule of process-level faults.

    The supervisor applies faults itself (it owns the ``Process``
    handles), at exact protocol points — after the epoch send for
    ``kill``/``stall``, after the reply for ``kill-after-reply`` — so a
    campaign's fault timeline is reproducible run over run.
    """

    __slots__ = ("faults",)

    def __init__(self, faults: Sequence[Fault] = ()):
        self.faults = list(faults)

    def normalize(self, barrier_count: int) -> None:
        """Resolve negative barrier ordinals against the actual epoch
        count (``-1`` becomes the final barrier)."""
        for fault in self.faults:
            if fault.barrier < 0:
                fault.barrier += barrier_count

    def pending(self, kind: str, barrier: int) -> List[Fault]:
        """Unfired faults of ``kind`` scheduled at ``barrier``."""
        return [f for f in self.faults
                if not f.fired and f.kind == kind and f.barrier == barrier]

    def __len__(self) -> int:
        return len(self.faults)

    def __repr__(self) -> str:
        return f"<FaultPlan {self.faults!r}>"


# ----------------------------------------------------------------------
# partial digests
# ----------------------------------------------------------------------

def outbox_digest(outbox: Sequence[Any]) -> str:
    """Canonical fingerprint of one epoch's outbox (the worker partial
    digest journaled at every barrier).

    Digests the *identity* of each diverted leg — arrival time, edge,
    packet id and wire size — rather than pickled bytes, so the value
    is stable across pickle round-trips and process generations while
    still pinning the event content a replay must reproduce.
    """
    rows = [(repr(h.time), repr(h.from_node), repr(h.to_node),
             getattr(h.packet, "packet_id", None),
             getattr(h.packet, "size_bytes", None))
            for h in outbox]
    payload = json.dumps(rows, sort_keys=True, default=repr)
    digest = hashlib.sha256(payload.encode()).hexdigest()[:16]
    tape = active_tape()
    if tape is not None:
        tape.record_merge(f"outbox[{len(outbox)}]", digest)
    return digest


# ----------------------------------------------------------------------
# the epoch journal and its checkpoints
# ----------------------------------------------------------------------

class Checkpoint:
    """The journal prefix up to (excluding) ``upto_epoch``, compacted
    into one pickled blob per shard.

    Worker state cannot be checkpointed as a memory image — live
    simulators hold closures on the agenda — so a checkpoint is
    *logical*: the replay stream a replacement needs, pre-pickled in
    one contiguous blob.  Restoring = unpickling the blob and replaying
    it, which determinism guarantees reaches the barrier-``upto_epoch``
    state.  Blobs optionally spill to ``spill_dir``.
    """

    __slots__ = ("upto_epoch", "blobs", "paths", "bytes")

    def __init__(self, upto_epoch: int, blobs: List[bytes],
                 spill_dir: Optional[str] = None):
        self.upto_epoch = int(upto_epoch)
        self.bytes = sum(len(b) for b in blobs)
        self.paths: Optional[List[str]] = None
        if spill_dir is None:
            self.blobs: Optional[List[bytes]] = blobs
            return
        self.blobs = None
        os.makedirs(spill_dir, exist_ok=True)
        self.paths = []
        for shard_index, blob in enumerate(blobs):
            path = os.path.join(
                spill_dir,
                f"ckpt-e{self.upto_epoch:06d}-s{shard_index}.pkl")
            with open(path, "wb") as fh:
                fh.write(blob)
            self.paths.append(path)

    def load(self, shard_index: int) -> List[Tuple[float, bytes,
                                                   Optional[str]]]:
        """The replay entries ``(epoch_end, batch_bytes, digest)`` for
        one shard, from memory or the spill file."""
        if self.blobs is not None:
            return pickle.loads(self.blobs[shard_index])
        assert self.paths is not None
        with open(self.paths[shard_index], "rb") as fh:
            return pickle.loads(fh.read())

    def discard(self) -> None:
        """Drop the blob storage (superseded by a newer checkpoint)."""
        self.blobs = None
        if self.paths:
            for path in self.paths:
                try:
                    os.unlink(path)
                except OSError:
                    pass
            self.paths = None

    def __repr__(self) -> str:
        where = "spilled" if self.paths is not None else "in-memory"
        return (f"<Checkpoint upto_epoch={self.upto_epoch} "
                f"bytes={self.bytes} {where}>")


class _EpochEntry:
    """One journaled epoch: end time, per-shard injection batches
    (pickled at send time) and per-shard outbox digests (stamped when
    the barrier replies arrive)."""

    __slots__ = ("epoch_end", "batch_bytes", "digests")

    def __init__(self, epoch_end: float, batch_bytes: List[bytes],
                 k: int):
        self.epoch_end = float(epoch_end)
        self.batch_bytes = batch_bytes
        self.digests: List[Optional[str]] = [None] * k


class EpochJournal:
    """The supervisor's flight log of the barrier protocol.

    ``record_send`` journals the injection batches as each epoch opens;
    ``record_digest`` stamps the worker partial digests as replies
    arrive.  ``replay_entries(shard, upto)`` assembles the exact replay
    stream a replacement for ``shard`` needs to reach barrier ``upto``
    — checkpoint blob first (if one covers a prefix), live tail after.
    ``checkpoint(upto)`` compacts the covered prefix and drops its
    per-epoch entries, bounding memory on long runs.
    """

    def __init__(self, k: int, spill_dir: Optional[str] = None):
        self.k = int(k)
        self.spill_dir = spill_dir
        #: epoch ordinal -> entry, for epochs after the checkpoint.
        self.entries: Dict[int, _EpochEntry] = {}
        self.checkpoint_state: Optional[Checkpoint] = None
        self.checkpoints_taken = 0
        self.checkpoint_bytes_total = 0

    # -- recording ---------------------------------------------------------
    def record_send(self, epoch: int, epoch_end: float,
                    batches: Dict[int, List[Any]]) -> None:
        self.entries[epoch] = _EpochEntry(
            epoch_end,
            [pickle.dumps(batches.get(i, [])) for i in range(self.k)],
            self.k)

    def record_digest(self, epoch: int, shard_index: int,
                      digest: str) -> None:
        entry = self.entries.get(epoch)
        if entry is not None:
            entry.digests[shard_index] = digest

    # -- replay ------------------------------------------------------------
    def replay_entries(self, shard_index: int, upto_epoch: int
                       ) -> List[Tuple[float, bytes, Optional[str]]]:
        """``(epoch_end, batch_bytes, expected_outbox_digest)`` for
        epochs ``[0, upto_epoch)`` of one shard, oldest first."""
        out: List[Tuple[float, bytes, Optional[str]]] = []
        start = 0
        ckpt = self.checkpoint_state
        if ckpt is not None and ckpt.upto_epoch <= upto_epoch:
            out.extend(ckpt.load(shard_index))
            start = ckpt.upto_epoch
        for epoch in range(start, upto_epoch):
            entry = self.entries[epoch]
            out.append((entry.epoch_end, entry.batch_bytes[shard_index],
                        entry.digests[shard_index]))
        return out

    # -- checkpointing -----------------------------------------------------
    def checkpoint(self, upto_epoch: int) -> int:
        """Compact epochs ``[0, upto_epoch)`` into per-shard blobs;
        returns the blob byte count (the ``checkpoint_bytes`` cost)."""
        blobs = [pickle.dumps(self.replay_entries(i, upto_epoch),
                              protocol=pickle.HIGHEST_PROTOCOL)
                 for i in range(self.k)]
        previous = self.checkpoint_state
        self.checkpoint_state = Checkpoint(upto_epoch, blobs,
                                           spill_dir=self.spill_dir)
        if previous is not None:
            previous.discard()
        for epoch in list(self.entries):
            if epoch < upto_epoch:
                del self.entries[epoch]
        self.checkpoints_taken += 1
        self.checkpoint_bytes_total += self.checkpoint_state.bytes
        return self.checkpoint_state.bytes

    # -- accounting --------------------------------------------------------
    @property
    def journal_bytes(self) -> int:
        """Live journal footprint: tail batches + current checkpoint."""
        tail = sum(len(b) for entry in self.entries.values()
                   for b in entry.batch_bytes)
        ckpt = self.checkpoint_state
        held = (ckpt.bytes if ckpt is not None and ckpt.blobs is not None
                else 0)
        return tail + held

    def close(self) -> None:
        if self.checkpoint_state is not None:
            self.checkpoint_state.discard()
            self.checkpoint_state = None
        self.entries.clear()

    def __repr__(self) -> str:
        return (f"<EpochJournal k={self.k} tail={len(self.entries)} "
                f"checkpoints={self.checkpoints_taken} "
                f"bytes={self.journal_bytes}>")
