"""QoS demands and QoS-aware path evaluation.

"For instance, we can generate a QoS oriented network topology on
demand" (Section D) — this module defines what "QoS oriented" means:
a :class:`QosDemand` constrains per-link latency/bandwidth (and path
latency / hop count); :func:`topology_on_demand` filters the physical
network down to the subgraph satisfying the demand, which the overlay
manager then instantiates as a virtual topology.
"""

from __future__ import annotations

from typing import Hashable, Iterable, List, Optional

from ..substrates.phys import Topology

NodeId = Hashable


class QosDemand:
    """A QoS constraint set for a virtual topology or a path."""

    def __init__(self, max_link_latency: Optional[float] = None,
                 min_bandwidth: Optional[float] = None,
                 max_path_latency: Optional[float] = None,
                 max_hops: Optional[int] = None,
                 name: str = "qos"):
        if max_link_latency is not None and max_link_latency <= 0:
            raise ValueError("max_link_latency must be positive")
        if min_bandwidth is not None and min_bandwidth <= 0:
            raise ValueError("min_bandwidth must be positive")
        self.max_link_latency = max_link_latency
        self.min_bandwidth = min_bandwidth
        self.max_path_latency = max_path_latency
        self.max_hops = max_hops
        self.name = name

    # -- link / path admission ------------------------------------------------
    def admits_link(self, link) -> bool:
        if not link.up:
            return False
        if (self.max_link_latency is not None
                and link.latency > self.max_link_latency):
            return False
        if (self.min_bandwidth is not None
                and link.bandwidth < self.min_bandwidth):
            return False
        return True

    def admits_path(self, topology: Topology,
                    path: Iterable[NodeId]) -> bool:
        nodes = list(path)
        if len(nodes) < 2:
            return True
        if self.max_hops is not None and len(nodes) - 1 > self.max_hops:
            return False
        latency = 0.0
        for a, b in zip(nodes, nodes[1:]):
            if not topology.has_link(a, b):
                return False
            link = topology.link(a, b)
            if not self.admits_link(link):
                return False
            latency += link.latency
        if (self.max_path_latency is not None
                and latency > self.max_path_latency):
            return False
        return True

    def __repr__(self) -> str:
        parts = []
        if self.max_link_latency is not None:
            parts.append(f"lat<={self.max_link_latency}")
        if self.min_bandwidth is not None:
            parts.append(f"bw>={self.min_bandwidth:.3g}")
        if self.max_path_latency is not None:
            parts.append(f"path<={self.max_path_latency}")
        if self.max_hops is not None:
            parts.append(f"hops<={self.max_hops}")
        return f"<QosDemand {self.name}: {' '.join(parts) or 'any'}>"


def topology_on_demand(physical: Topology, demand: QosDemand,
                       members: Optional[Iterable[NodeId]] = None) -> Topology:
    """The QoS-admissible subgraph of the physical network.

    ``members`` restricts the virtual topology to a node subset (the
    overlay's participants); None means every physical node.
    """
    member_set = set(members) if members is not None else set(physical.nodes)
    virtual = Topology()
    for node in physical.nodes:
        if node in member_set:
            virtual.add_node(node)
            if not physical.node_up(node):
                virtual.set_node_state(node, False)
    for link in physical.links:
        if (link.a in member_set and link.b in member_set
                and demand.admits_link(link)):
            virtual.add_link(link.a, link.b, link.latency, link.bandwidth,
                             name=link.name)
    return virtual


def path_qos(topology: Topology, path: List[NodeId]) -> dict:
    """Measured QoS figures of a concrete path."""
    if len(path) < 2:
        return {"latency": 0.0, "hops": 0,
                "bottleneck_bandwidth": float("inf")}
    latency = 0.0
    bottleneck = float("inf")
    for a, b in zip(path, path[1:]):
        link = topology.link(a, b)
        latency += link.latency
        bottleneck = min(bottleneck, link.bandwidth)
    return {"latency": latency, "hops": len(path) - 1,
            "bottleneck_bandwidth": bottleneck}
