"""Virtual overlay networks (vertical wandering, Figure 4).

"Routing Control: overlaying and managing several virtual topologies on
top of the same physical network infrastructure" — the
:class:`OverlayManager` spawns, reshapes (*clustering*) and removes
virtual overlays over one physical topology.  Each overlay is a
QoS-filtered subgraph with its own membership; ships participate via
their :class:`~repro.functions.routing_control.RoutingControlRole`.

Figure 4's two labelled operations are methods here: :meth:`spawn`
(a new "Virtual Overlay X Network" appears) and :meth:`cluster`
(an overlay contracts onto the nodes actually using it).
"""

from __future__ import annotations

import itertools
from typing import Dict, Hashable, Iterable, List, Optional, Set, Tuple

from ..substrates.phys import Topology
from .qos import QosDemand, path_qos, topology_on_demand

NodeId = Hashable

# fork-inherited id sequence: every shard replays the same
# construction order, so per-process copies advance identically
# (see shard/recovery.py)  # via: ignore[VIA013]
_overlay_seq = itertools.count(1)


class Overlay:
    """One virtual topology over the physical network."""

    def __init__(self, overlay_id: str, demand: QosDemand,
                 virtual: Topology, members: Set[NodeId],
                 created_at: float = 0.0):
        self.overlay_id = overlay_id
        self.demand = demand
        self.virtual = virtual
        self.members = set(members)
        self.created_at = created_at
        self.reshapes = 0

    def path(self, src: NodeId, dst: NodeId) -> Optional[List[NodeId]]:
        if src not in self.virtual or dst not in self.virtual:
            return None
        return self.virtual.path(src, dst)

    def connected(self) -> bool:
        live = [n for n in self.virtual.nodes if self.virtual.node_up(n)]
        if len(live) <= 1:
            return True
        return self.virtual.is_connected()

    def __repr__(self) -> str:
        return (f"<Overlay {self.overlay_id} members={len(self.members)} "
                f"links={len(self.virtual.links)}>")


class OverlayManager:
    """Spawns and maintains virtual overlays over one physical topology."""

    def __init__(self, sim, physical: Topology):
        self.sim = sim
        self.physical = physical
        self.overlays: Dict[str, Overlay] = {}
        self._ships: Dict[NodeId, object] = {}
        self.spawned = 0
        self.removed = 0
        self._synced_version = -1

    # -- ship participation -------------------------------------------------
    def register_ship(self, ship) -> None:
        self._ships[ship.ship_id] = ship

    def _notify_join(self, overlay: Overlay) -> None:
        from ..functions import RoutingControlRole
        for member in overlay.members:
            ship = self._ships.get(member)
            if ship is None or not ship.has_role(RoutingControlRole.role_id):
                continue
            ship.role(RoutingControlRole.role_id).join_overlay(
                ship, overlay.overlay_id)

    def _notify_leave(self, overlay: Overlay,
                      leavers: Iterable[NodeId]) -> None:
        from ..functions import RoutingControlRole
        for member in leavers:
            ship = self._ships.get(member)
            if ship is None or not ship.has_role(RoutingControlRole.role_id):
                continue
            ship.role(RoutingControlRole.role_id).leave_overlay(
                ship, overlay.overlay_id)

    # -- lifecycle ----------------------------------------------------------
    def spawn(self, demand: QosDemand,
              members: Optional[Iterable[NodeId]] = None,
              overlay_id: Optional[str] = None) -> Overlay:
        """Generate a QoS-oriented virtual topology on demand (Figure 4)."""
        oid = overlay_id or f"overlay-{next(_overlay_seq)}"
        if oid in self.overlays:
            raise ValueError(f"overlay {oid} already exists")
        member_set = set(members) if members is not None \
            else set(self.physical.nodes)
        virtual = topology_on_demand(self.physical, demand, member_set)
        overlay = Overlay(oid, demand, virtual, member_set,
                          created_at=self.sim.now)
        self.overlays[oid] = overlay
        self.spawned += 1
        self._notify_join(overlay)
        self.sim.trace.emit("overlay.spawn", overlay=oid,
                            members=len(member_set),
                            links=len(virtual.links))
        return overlay

    def remove(self, overlay_id: str) -> None:
        overlay = self.overlays.pop(overlay_id, None)
        if overlay is None:
            return
        self.removed += 1
        self._notify_leave(overlay, overlay.members)
        self.sim.trace.emit("overlay.remove", overlay=overlay_id)

    def cluster(self, overlay_id: str,
                active_members: Iterable[NodeId]) -> Overlay:
        """Contract an overlay onto its actually-active members.

        Figure 4's *Clustering*: the virtual network tightens around the
        nodes using it, releasing the rest.
        """
        overlay = self.overlays[overlay_id]
        active = set(active_members) & overlay.members
        leavers = overlay.members - active
        overlay.members = active
        overlay.virtual = topology_on_demand(self.physical, overlay.demand,
                                             active)
        overlay.reshapes += 1
        self._notify_leave(overlay, leavers)
        self.sim.trace.emit("overlay.cluster", overlay=overlay_id,
                            members=len(active), released=len(leavers))
        return overlay

    def resync(self) -> int:
        """Refresh every overlay against the current physical topology.

        Called when the physical network changed (mobility, failures);
        returns how many overlays were rebuilt.
        """
        if self._synced_version == self.physical.version:
            return 0
        self._synced_version = self.physical.version
        rebuilt = 0
        for overlay in self.overlays.values():
            overlay.virtual = topology_on_demand(
                self.physical, overlay.demand, overlay.members)
            overlay.reshapes += 1
            rebuilt += 1
        return rebuilt

    # -- measurements ---------------------------------------------------------
    def best_overlay_path(self, src: NodeId,
                          dst: NodeId) -> Tuple[Optional[str],
                                                Optional[List[NodeId]]]:
        """The lowest-latency admissible path across all overlays."""
        self.resync()
        best: Tuple[Optional[str], Optional[List[NodeId]], float] = \
            (None, None, float("inf"))
        for oid in sorted(self.overlays):
            path = self.overlays[oid].path(src, dst)
            if path is None:
                continue
            latency = path_qos(self.overlays[oid].virtual, path)["latency"]
            if latency < best[2]:
                best = (oid, path, latency)
        return best[0], best[1]

    def snapshot(self) -> Dict[str, Dict]:
        """Per-overlay membership/link view (bench F4 series rows)."""
        self.resync()
        return {oid: {"members": sorted(o.members, key=repr),
                      "links": len(o.virtual.links),
                      "connected": o.connected()}
                for oid, o in sorted(self.overlays.items())}

    def __repr__(self) -> str:
        return f"<OverlayManager overlays={len(self.overlays)}>"
