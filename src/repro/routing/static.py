"""Static (oracle) shortest-path routing.

The simplest router a ship can use: an omniscient shortest-path oracle
over the current topology, equivalent to a converged link-state IGP.
Used by wired scenarios and as the upper-bound baseline for the adaptive
ad-hoc protocol (an oracle never has stale routes, but real ad-hoc
networks cannot have one).
"""

from __future__ import annotations

from typing import Dict, Hashable, Optional

from ..substrates.phys import Topology

NodeId = Hashable


class StaticRouter:
    """Shared shortest-path oracle; one instance serves many ships."""

    def __init__(self, topology: Topology, weight: str = "latency"):
        self.topology = topology
        self.weight = weight
        self._tables: Dict[NodeId, Dict[NodeId, NodeId]] = {}
        self._version = -1

    def _refresh(self) -> None:
        if self._version == self.topology.version:
            return
        self._tables.clear()
        self._version = self.topology.version

    def _table_for(self, src: NodeId) -> Dict[NodeId, NodeId]:
        self._refresh()
        table = self._tables.get(src)
        if table is None:
            dist, prev = self.topology.shortest_paths(src, weight=self.weight)
            table = {}
            for dst in dist:
                if dst == src:
                    continue
                hop = dst
                while prev.get(hop) != src:
                    hop = prev[hop]
                table[dst] = hop
            self._tables[src] = table
        return table

    def next_hop(self, ship_id: NodeId, dst: NodeId) -> Optional[NodeId]:
        return self._table_for(ship_id).get(dst)

    def handle_control(self, ship, packet, from_node) -> bool:
        return False

    def on_attached(self, ship) -> None:
        pass

    def __repr__(self) -> str:
        return f"<StaticRouter weight={self.weight}>"
