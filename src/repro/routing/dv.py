"""Proactive distance-vector baseline router.

The conventional ad-hoc baseline the WLI adaptive protocol is compared
against: periodic full-table broadcasts (DSDV-flavoured), no on-demand
discovery, no packet buffering.  Routes time out if not refreshed; a
split-horizon rule avoids two-node count-to-infinity loops.
"""

from __future__ import annotations

from typing import Dict, Hashable, NamedTuple, Optional

from ..substrates.phys import Datagram
from ..substrates.sim import Simulator

NodeId = Hashable


class DVRoute(NamedTuple):
    next_hop: NodeId
    cost: float
    expires: float


class DistanceVectorRouter:
    """Periodic-advertisement DV routing (one instance per ship)."""

    INFINITY = 16.0

    def __init__(self, sim: Simulator, advertise_interval: float = 5.0,
                 route_ttl: float = 15.0):
        self.sim = sim
        self.advertise_interval = float(advertise_interval)
        self.route_ttl = float(route_ttl)
        self.ship = None
        self.routes: Dict[NodeId, DVRoute] = {}
        self.advertisements_sent = 0
        self._task = None

    def on_attached(self, ship) -> None:
        self.ship = ship
        self._task = self.sim.every(
            self.advertise_interval, self._advertise,
            jitter=self.advertise_interval * 0.2,
            stream=f"routing.dv.{ship.ship_id}")

    def stop(self) -> None:
        if self._task is not None:
            self._task.stop()

    def _neighbors(self) -> set:
        if self.ship is None or not self.ship.alive:
            return set()
        return set(self.ship.fabric.topology.neighbors(self.ship.ship_id))

    def _alive(self, route: DVRoute) -> bool:
        return (route.expires > self.sim.now
                and route.cost < self.INFINITY
                and route.next_hop in self._neighbors())

    def next_hop(self, ship_id: NodeId, dst: NodeId) -> Optional[NodeId]:
        if dst in self._neighbors():
            return dst
        route = self.routes.get(dst)
        if route is not None and self._alive(route):
            return route.next_hop
        return None

    def _advertise(self) -> None:
        if self.ship is None or not self.ship.alive:
            return
        self.advertisements_sent += 1
        for neighbor in sorted(self._neighbors(), key=repr):
            vector = {self.ship.ship_id: 0.0}
            for dst, route in self.routes.items():
                if not self._alive(route):
                    continue
                # Split horizon: never advertise back the hop we use.
                if route.next_hop == neighbor:
                    continue
                vector[dst] = route.cost
            adv = Datagram(self.ship.ship_id, neighbor,
                           size_bytes=64 + 12 * len(vector), ttl=1,
                           payload={"kind": "dv-adv", "vector": vector})
            self.ship.fabric.send(self.ship.ship_id, neighbor, adv)

    def handle_control(self, ship, packet, from_node) -> bool:
        payload = packet.payload
        if not isinstance(payload, dict) or payload.get("kind") != "dv-adv":
            return False
        for dst, cost in payload["vector"].items():
            if dst == ship.ship_id:
                continue
            new_cost = min(cost + 1.0, self.INFINITY)
            current = self.routes.get(dst)
            if (current is None or not self._alive(current)
                    or new_cost < current.cost
                    or current.next_hop == from_node):
                self.routes[dst] = DVRoute(from_node, new_cost,
                                           self.sim.now + self.route_ttl)
        return True

    def __repr__(self) -> str:
        return f"<DistanceVectorRouter routes={len(self.routes)}>"


class FloodingRouter:
    """Degenerate baseline: flood everything (robust, hugely wasteful).

    Each packet is re-broadcast once per node (duplicate suppression by
    packet flow+id), and delivered when it reaches its destination.
    """

    def __init__(self):
        self.ship = None
        self._seen = set()
        self.floods = 0

    def on_attached(self, ship) -> None:
        self.ship = ship

    def next_hop(self, ship_id: NodeId, dst: NodeId) -> Optional[NodeId]:
        # Flooding has no single next hop; handle_control does the work.
        return None

    def on_no_route(self, ship, packet: Datagram) -> bool:
        key = (packet.flow_id, packet.packet_id)
        if key in self._seen:
            return False
        self._seen.add(key)
        self.floods += 1
        flood = packet.clone()
        flood.meta["flooded"] = True
        return ship.fabric.broadcast(ship.ship_id, flood) > 0

    def handle_control(self, ship, packet, from_node) -> bool:
        if not packet.meta.get("flooded"):
            return False
        if packet.dst == ship.ship_id:
            ship.deliver_local(packet, from_node)
            return True
        key = (packet.flow_id, "relay", packet.src, packet.dst,
               packet.created_at)
        if key in self._seen or packet.ttl <= 0:
            return True  # suppress duplicate
        self._seen.add(key)
        ship.fabric.broadcast(ship.ship_id, packet)
        return True
