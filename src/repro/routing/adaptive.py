"""The WLI generic adaptive routing protocol for active ad-hoc networks.

Section E reports that the WLI framework was applied to "the formal
specification and verification of a generic adaptive routing protocol
for active ad-hoc wireless networks".  This module is that protocol,
implemented and runnable (its verified model lives in
:mod:`repro.verification.specs.adaptive_routing`):

* **proactive half** — periodic *hello* advertisements to neighbours
  carrying a distance vector of known routes;
* **reactive half** — on-demand route discovery (request flood + reply
  unwinding along reverse routes) when a packet has no route, with the
  packet buffered until the route arrives or times out;
* **PMP coupling** — every learned route is also recorded as a ``route``
  fact in the ship's knowledge base, so routes age and vanish exactly
  like any other fact ("facts have a certain lifetime ...").

Routes themselves carry an expiry refreshed on use/advertisement; link
churn (radio or failures) invalidates affected routes immediately.
"""

from __future__ import annotations

import itertools
from typing import Dict, Hashable, List, NamedTuple, Optional, Tuple

import numpy as np

from ..perf.switches import switches as _opt
from ..substrates.phys import Datagram
from ..substrates.sim import Simulator

#: Below this many hello-vector rows the vectorized cost screen costs
#: more than the scalar loop it replaces.
_HELLO_BATCH_MIN = 16

NodeId = Hashable

# fork-inherited id sequence: every shard replays the same
# construction order, so per-process copies advance identically
# (see shard/recovery.py)  # via: ignore[VIA013]
_request_ids = itertools.count(1)


class Route(NamedTuple):
    next_hop: NodeId
    cost: float          # hop count toward dst
    expires: float       # absolute sim time


class WLIAdaptiveRouter:
    """Per-ship adaptive ad-hoc router (one instance per ship)."""

    def __init__(self, sim: Simulator,
                 hello_interval: float = 5.0,
                 route_ttl: float = 30.0,
                 discovery_timeout: float = 3.0,
                 max_buffered: int = 64,
                 proactive: bool = True,
                 reactive: bool = True):
        if hello_interval <= 0 or route_ttl <= 0 or discovery_timeout <= 0:
            raise ValueError("intervals must be positive")
        self.sim = sim
        self.hello_interval = float(hello_interval)
        self.route_ttl = float(route_ttl)
        self.discovery_timeout = float(discovery_timeout)
        self.max_buffered = int(max_buffered)
        self.proactive = proactive
        self.reactive = reactive

        self.ship = None
        self.routes: Dict[NodeId, Route] = {}
        self._buffered: Dict[NodeId, List[Datagram]] = {}
        self._discovering: Dict[NodeId, float] = {}  # dst -> deadline
        self._seen_requests: set = set()

        self.hellos_sent = 0
        self.discoveries_started = 0
        self.replies_sent = 0
        self.buffered_total = 0
        self.buffer_drops = 0
        self._hello_task = None

    # -- attachment --------------------------------------------------------
    def on_attached(self, ship) -> None:
        self.ship = ship
        if self.proactive:
            self._hello_task = self.sim.every(
                self.hello_interval, self._send_hello,
                jitter=self.hello_interval * 0.2,
                stream=f"routing.hello.{ship.ship_id}")

    def stop(self) -> None:
        if self._hello_task is not None:
            self._hello_task.stop()

    # -- route table --------------------------------------------------------
    def _alive(self, route: Route) -> bool:
        return (route.expires > self.sim.now
                and route.next_hop in self._neighbor_set())

    def _neighbor_set(self) -> set:
        if self.ship is None or not self.ship.alive:
            return set()
        try:
            return set(self.ship.fabric.topology.neighbors(self.ship.ship_id))
        except Exception:
            return set()

    def learn_route(self, dst: NodeId, next_hop: NodeId, cost: float) -> None:
        if dst == self.ship.ship_id:
            return
        current = self.routes.get(dst)
        fresh = Route(next_hop, cost, self.sim.now + self.route_ttl)
        if (current is None or not self._alive(current)
                or cost < current.cost
                or (next_hop == current.next_hop)):
            self.routes[dst] = fresh
            # PMP coupling: the route is an experience of the network.
            self.ship.record_fact("route", (dst, next_hop))
            self._flush_buffer(dst)

    def invalidate_via(self, next_hop: NodeId) -> int:
        """Drop every route through a lost neighbour; returns count."""
        dead = [dst for dst, r in self.routes.items()
                if r.next_hop == next_hop]
        for dst in dead:
            del self.routes[dst]
        return len(dead)

    def route_table(self) -> Dict[NodeId, Tuple[NodeId, float]]:
        return {dst: (r.next_hop, r.cost)
                for dst, r in self.routes.items() if self._alive(r)}

    # -- forwarding decisions ---------------------------------------------
    def next_hop(self, ship_id: NodeId, dst: NodeId) -> Optional[NodeId]:
        neighbors = self._neighbor_set()
        if dst in neighbors:
            self.learn_route(dst, dst, 1.0)
            return dst
        route = self.routes.get(dst)
        if route is not None and self._alive(route):
            # Use refreshes the route (and its fact's weight).
            self.routes[dst] = Route(route.next_hop, route.cost,
                                     self.sim.now + self.route_ttl)
            return route.next_hop
        return None

    def on_no_route(self, ship, packet: Datagram) -> bool:
        """Buffer the packet and start reactive discovery.  True=buffered."""
        if not self.reactive:
            return False
        buf = self._buffered.setdefault(packet.dst, [])
        if len(buf) >= self.max_buffered:
            self.buffer_drops += 1
            return False
        buf.append(packet)
        self.buffered_total += 1
        self._start_discovery(packet.dst)
        return True

    #: Costs at or above this are unreachable (count-to-infinity bound).
    INFINITY = 16.0

    # -- proactive half -----------------------------------------------------
    def _send_hello(self) -> None:
        """Per-neighbour advertisements with split horizon + poisoned
        reverse: a route is advertised back to its own next hop as
        unreachable.  Without this the hello half can build the classic
        two-node count-to-infinity loop — found by the model/
        implementation cross-validation test, not by the spec (whose
        reactive core has no periodic advertisements)."""
        if self.ship is None or not self.ship.alive:
            return
        self.hellos_sent += 1
        if self.sim.obs.on:
            self.sim.obs.protocol_events.inc(method="routing.hello")
        table = self.route_table()
        for neighbor in sorted(self._neighbor_set(), key=repr):
            vector = {self.ship.ship_id: 0.0}
            for dst, (hop, cost) in table.items():
                vector[dst] = self.INFINITY if hop == neighbor else cost
            hello = Datagram(self.ship.ship_id, neighbor,
                             size_bytes=64 + 12 * len(vector), ttl=1,
                             payload={"kind": "route-adv",
                                      "vector": vector,
                                      "origin": self.ship.ship_id})
            self.ship.fabric.send(self.ship.ship_id, neighbor, hello)

    def _on_hello(self, ship, packet, from_node) -> None:
        vector = packet.payload["vector"]
        if _opt.batch_delivery and len(vector) >= _HELLO_BATCH_MIN:
            self._apply_hello_batch(ship, vector, from_node)
            return
        for dst, cost in vector.items():
            if dst == ship.ship_id:
                continue
            new_cost = cost + 1.0
            if new_cost >= self.INFINITY:
                # Poisoned: drop our route if it goes through the sender.
                current = self.routes.get(dst)
                if current is not None and current.next_hop == from_node:
                    del self.routes[dst]
                continue
            self.learn_route(dst, from_node, new_cost)

    def _apply_hello_batch(self, ship, vector: Dict[NodeId, float],
                           from_node: NodeId) -> None:
        """Vectorized hello-vector screen (``perf.switches.
        batch_delivery``): the ``cost + 1.0`` increments and the
        poisoned-route comparisons are one float64 array pass — both
        IEEE-exact, so branch decisions and learned costs are
        bit-identical to the scalar loop — and the stateful
        ``learn_route`` updates then run in vector order as before."""
        dsts = list(vector)
        n = len(dsts)
        costs = np.fromiter((vector[dst] for dst in dsts),
                            dtype=np.float64, count=n)
        costs += 1.0
        poisoned = (costs >= self.INFINITY).tolist()
        new_costs = costs.tolist()
        me = ship.ship_id
        routes = self.routes
        for i, dst in enumerate(dsts):
            if dst == me:
                continue
            if poisoned[i]:
                current = routes.get(dst)
                if current is not None and current.next_hop == from_node:
                    del routes[dst]
                continue
            self.learn_route(dst, from_node, new_costs[i])

    # -- reactive half ------------------------------------------------------
    def _start_discovery(self, dst: NodeId) -> None:
        deadline = self._discovering.get(dst)
        if deadline is not None and deadline > self.sim.now:
            return
        self._discovering[dst] = self.sim.now + self.discovery_timeout
        self.discoveries_started += 1
        if self.sim.obs.on:
            self.sim.obs.protocol_events.inc(method="routing.rreq")
        request_id = next(_request_ids)
        self._seen_requests.add((self.ship.ship_id, request_id))
        rreq = Datagram(self.ship.ship_id, Datagram.BROADCAST,
                        size_bytes=96, ttl=16,
                        payload={"kind": "rreq", "origin": self.ship.ship_id,
                                 "target": dst, "request_id": request_id,
                                 "hops": 0})
        self.ship.fabric.broadcast(self.ship.ship_id, rreq)
        self.sim.call_in(self.discovery_timeout, self._discovery_deadline,
                         dst, name="rreq-timeout")

    def _discovery_deadline(self, dst: NodeId) -> None:
        if dst in self.routes and self._alive(self.routes[dst]):
            return
        self._discovering.pop(dst, None)
        dropped = self._buffered.pop(dst, [])
        self.buffer_drops += len(dropped)
        if dropped:
            self.sim.trace.emit("routing.discovery.fail",
                                ship=self.ship.ship_id, dst=dst,
                                dropped=len(dropped))

    def _on_rreq(self, ship, packet, from_node) -> None:
        p = packet.payload
        key = (p["origin"], p["request_id"])
        if key in self._seen_requests:
            return
        self._seen_requests.add(key)
        hops = p["hops"] + 1
        # Reverse route toward the origin.
        self.learn_route(p["origin"], from_node, float(hops))
        target = p["target"]
        if target == ship.ship_id:
            self._send_reply(p["origin"], target, 0)
            return
        route = self.routes.get(target)
        if route is not None and self._alive(route):
            # Intermediate node answers from its route cache.
            self._send_reply(p["origin"], target, int(route.cost))
            return
        fwd = Datagram(ship.ship_id, Datagram.BROADCAST,
                       size_bytes=96, ttl=packet.ttl,
                       payload={**p, "hops": hops})
        ship.fabric.broadcast(ship.ship_id, fwd)

    def _send_reply(self, origin: NodeId, target: NodeId,
                    base_cost: int) -> None:
        self.replies_sent += 1
        if self.sim.obs.on:
            self.sim.obs.protocol_events.inc(method="routing.rrep")
        rrep = Datagram(self.ship.ship_id, origin, size_bytes=96, ttl=16,
                        payload={"kind": "rrep", "target": target,
                                 "cost": base_cost, "origin": origin,
                                 "responder": self.ship.ship_id})
        self._forward_reply(rrep)

    def _forward_reply(self, rrep: Datagram) -> None:
        hop = self.next_hop(self.ship.ship_id, rrep.dst)
        if hop is not None:
            self.ship.fabric.send(self.ship.ship_id, hop, rrep)

    def _on_rrep(self, ship, packet, from_node) -> None:
        p = packet.payload
        cost_here = p["cost"] + packet.hops
        self.learn_route(p["target"], from_node, float(max(cost_here, 1)))
        if p["origin"] == ship.ship_id:
            self._discovering.pop(p["target"], None)
            self._flush_buffer(p["target"])
            return
        self._forward_reply(packet)

    def _flush_buffer(self, dst: NodeId) -> None:
        buffered = self._buffered.pop(dst, [])
        for packet in buffered:
            self.ship.send_toward(packet)

    # -- control dispatch ---------------------------------------------------
    def handle_control(self, ship, packet, from_node) -> bool:
        payload = packet.payload
        if not isinstance(payload, dict):
            return False
        kind = payload.get("kind")
        if kind == "route-adv":
            self._on_hello(ship, packet, from_node)
            return True
        if kind == "rreq":
            self._on_rreq(ship, packet, from_node)
            return True
        if kind == "rrep":
            self._on_rrep(ship, packet, from_node)
            return True
        return False

    def __repr__(self) -> str:
        return (f"<WLIAdaptiveRouter routes={len(self.routes)} "
                f"discoveries={self.discoveries_started}>")
