"""Routing: WLI adaptive ad-hoc protocol, baselines, QoS, overlays."""

from .adaptive import Route, WLIAdaptiveRouter
from .dv import DistanceVectorRouter, FloodingRouter
from .overlay import Overlay, OverlayManager
from .qos import QosDemand, path_qos, topology_on_demand
from .static import StaticRouter

__all__ = ["Route", "WLIAdaptiveRouter", "DistanceVectorRouter",
           "FloodingRouter", "Overlay", "OverlayManager", "QosDemand",
           "path_qos", "topology_on_demand", "StaticRouter"]
