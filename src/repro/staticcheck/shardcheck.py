"""Whole-program shard-safety analysis (rules VIA012+).

The per-file linter (:mod:`repro.staticcheck.rules`) can see one module
at a time; the shard/recovery plane's correctness contract is
cross-file.  A workload class defined in ``perf/scenarios.py`` is
pickled in the parent, shipped over a pipe, and rebuilt inside a forked
worker (``shard/executor.py``); a module-level counter incremented in
``substrates/phys/packet.py`` is forked into every worker; an obs
counter registered in ``obs/facade.py`` is bumped on the supervisor's
recovery path.  ``shardcheck`` builds the import graph, computes the
set of modules reachable from the shard worker entry points, and
checks four whole-program rules over that slice:

VIA012  pickle-boundary safety — every class that crosses an executor
        pipe (``ShardWorkload`` subclasses, classes marked
        ``__shard_boundary__ = True``, and classes composed into them)
        must be ``__slots__``-closed along its collected ancestry and
        must not assign statically-unpicklable fields (lambdas, open
        files, locks, sockets, generators).
VIA013  module-level mutable state in worker-reachable modules that is
        also mutated at runtime — after ``fork`` each worker owns a
        silently diverging copy.
VIA014  obs digest-hygiene — instruments touched inside the shard
        package must be registered (cross-checked against the
        ``self.x = r.counter("name", ...)`` sites in the obs facade)
        under a digest-excluded metric prefix.
VIA015  RNG seed discipline — ``random.Random(x)`` /
        ``np.random.default_rng(x)`` in worker-reachable code must
        derive ``x`` via ``derive_seed``.

Findings share the :class:`~repro.staticcheck.rules.Finding` shape, the
reporters, and the ``# via: ignore[VIA013] reason`` pragma grammar with
the per-file linter.
"""

from __future__ import annotations

import ast
import pathlib
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from .engine import (LintError, iter_python_files, normalize_select,
                     suppressions)
from .rules import Finding, SHARD_RULES

#: Fallback when the analyzed tree does not define the tuple itself
#: (kept in sync with :data:`repro.obs.snapshot.DIGEST_EXCLUDED_PREFIXES`).
_DEFAULT_DIGEST_EXCLUDED = ("repro_shard_", "repro_obs_")

#: Dotted call paths whose return values cannot cross a pickle boundary.
_UNPICKLABLE_CALLS = frozenset({
    "open", "io.open",
    "threading.Lock", "threading.RLock", "threading.Event",
    "threading.Condition", "threading.Semaphore",
    "multiprocessing.Pipe", "multiprocessing.Queue",
    "multiprocessing.Lock", "multiprocessing.Pool",
    "socket.socket",
})

#: Method names that mutate a container in place.
_MUTATING_METHODS = frozenset({
    "append", "extend", "add", "update", "setdefault", "insert",
    "remove", "discard", "pop", "popitem", "clear", "appendleft",
})

#: Constructors whose module-level result is mutable shared state.
_MUTABLE_FACTORIES = frozenset({
    "dict", "list", "set", "collections.defaultdict",
    "collections.deque", "collections.OrderedDict",
    "collections.Counter", "itertools.count",
})

_OBS_INSTRUMENT_FACTORIES = frozenset({"counter", "gauge", "histogram"})
_OBS_TOUCH_METHODS = frozenset({"inc", "observe", "set", "labels"})

_WORKLOAD_ROOT = "ShardWorkload"


def _dotted(node: ast.AST) -> Optional[str]:
    """``a.b.c`` attribute chains as a dotted string, else None."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


class ClassInfo:
    """One collected class definition."""

    __slots__ = ("module", "name", "lineno", "col", "bases", "has_slots",
                 "fields", "boundary_marked")

    def __init__(self, module: str, name: str, node: ast.ClassDef):
        self.module = module
        self.name = name
        self.lineno = node.lineno
        self.col = node.col_offset
        self.bases: List[str] = [d for d in map(_dotted, node.bases) if d]
        self.has_slots = False
        #: (attr, value node, lineno, col) for ``self.x = ...`` and
        #: class-level assignments.
        self.fields: List[Tuple[str, ast.AST, int, int]] = []
        self.boundary_marked = False

    @property
    def dotted(self) -> str:
        return f"{self.module}.{self.name}"


class ModuleInfo:
    """One parsed module and the facts shardcheck needs from it."""

    __slots__ = ("name", "path", "source", "tree", "imports", "symbols",
                 "classes", "mutable_decls", "mutated_names",
                 "global_rebinds", "rng_calls", "obs_registrations",
                 "obs_touches", "digest_prefixes")

    def __init__(self, name: str, path: pathlib.Path, source: str,
                 tree: ast.Module):
        self.name = name
        self.path = path
        self.source = source
        self.tree = tree
        self.imports: Set[str] = set()
        #: local name -> dotted origin (``np`` -> ``numpy``).
        self.symbols: Dict[str, str] = {}
        self.classes: List[ClassInfo] = []
        #: module-level mutable binding -> (lineno, col).
        self.mutable_decls: Dict[str, Tuple[int, int]] = {}
        #: names mutated at runtime (from inside functions).
        self.mutated_names: Set[str] = set()
        #: names rebound via ``global`` -> first (lineno, col).
        self.global_rebinds: Dict[str, Tuple[int, int]] = {}
        #: (lineno, col, resolved ctor, seed-arg node or None).
        self.rng_calls: List[Tuple[int, int, str, Optional[ast.AST]]] = []
        #: instrument attr -> metric name.
        self.obs_registrations: Dict[str, str] = {}
        #: (attr, lineno, col).
        self.obs_touches: List[Tuple[str, int, int]] = []
        self.digest_prefixes: Optional[Tuple[str, ...]] = None

    def resolve(self, dotted: Optional[str]) -> Optional[str]:
        """Resolve a local dotted name through this module's imports."""
        if dotted is None:
            return None
        head, _, tail = dotted.partition(".")
        origin = self.symbols.get(head, head)
        return f"{origin}.{tail}" if tail else origin


def module_name_for(path: pathlib.Path) -> str:
    """Dotted module name, rooted at the outermost package directory."""
    path = path.resolve()
    parts = [] if path.stem == "__init__" else [path.stem]
    parent = path.parent
    while (parent / "__init__.py").exists():
        parts.insert(0, parent.name)
        parent = parent.parent
    return ".".join(parts) or path.stem


def _relative_base(module: str, is_package: bool, level: int) -> str:
    """The package a ``from ...x import y`` resolves against."""
    parts = module.split(".")
    if not is_package:
        parts = parts[:-1]
    drop = level - 1
    if drop:
        parts = parts[:-drop] if drop < len(parts) else []
    return ".".join(parts)


class _ModuleCollector(ast.NodeVisitor):
    """Single pass that fills a :class:`ModuleInfo`."""

    def __init__(self, info: ModuleInfo, is_package: bool):
        self.info = info
        self.is_package = is_package
        self._class_stack: List[ClassInfo] = []
        self._func_depth = 0

    # -- imports -----------------------------------------------------------
    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            self.info.imports.add(alias.name)
            local = alias.asname or alias.name.partition(".")[0]
            self.info.symbols[local] = (alias.name if alias.asname
                                        else alias.name.partition(".")[0])
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.level:
            base = _relative_base(self.info.name, self.is_package,
                                  node.level)
            module = (f"{base}.{node.module}" if node.module and base
                      else (node.module or base))
        else:
            module = node.module or ""
        if module:
            self.info.imports.add(module)
            for alias in node.names:
                if alias.name == "*":
                    continue
                self.info.imports.add(f"{module}.{alias.name}")
                self.info.symbols[alias.asname or alias.name] = \
                    f"{module}.{alias.name}"
        self.generic_visit(node)

    # -- classes -----------------------------------------------------------
    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        info = ClassInfo(self.info.name, node.name, node)
        for stmt in node.body:
            targets = []
            if isinstance(stmt, ast.Assign):
                targets = stmt.targets
            elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                targets = [stmt.target]
            for target in targets:
                if not isinstance(target, ast.Name):
                    continue
                if target.id == "__slots__":
                    info.has_slots = True
                elif target.id == "__shard_boundary__":
                    value = stmt.value
                    info.boundary_marked = bool(
                        isinstance(value, ast.Constant) and value.value)
                else:
                    info.fields.append((target.id, stmt.value,
                                        stmt.lineno, stmt.col_offset))
        self.info.classes.append(info)
        self._class_stack.append(info)
        self.generic_visit(node)
        self._class_stack.pop()

    # -- functions: runtime context ----------------------------------------
    def _visit_function(self, node) -> None:
        assigned = {t.id for stmt in ast.walk(node)
                    for t in getattr(stmt, "targets", [])
                    if isinstance(t, ast.Name)}
        for stmt in ast.walk(node):
            if isinstance(stmt, ast.Global):
                for name in stmt.names:
                    if name in assigned:
                        self.info.global_rebinds.setdefault(
                            name, (stmt.lineno, stmt.col_offset))
        self._func_depth += 1
        self.generic_visit(node)
        self._func_depth -= 1

    visit_FunctionDef = _visit_function
    visit_AsyncFunctionDef = _visit_function

    # -- assignments -------------------------------------------------------
    def visit_Assign(self, node: ast.Assign) -> None:
        if self._func_depth == 0 and not self._class_stack:
            for target in node.targets:
                if isinstance(target, ast.Name) \
                        and self._is_mutable_value(node.value):
                    self.info.mutable_decls.setdefault(
                        target.id, (node.lineno, node.col_offset))
        if self._class_stack and self._func_depth > 0:
            for target in node.targets:
                if isinstance(target, ast.Attribute) \
                        and isinstance(target.value, ast.Name) \
                        and target.value.id == "self":
                    self._class_stack[-1].fields.append(
                        (target.attr, node.value,
                         node.lineno, node.col_offset))
                    self._record_obs_registration(target.attr, node.value)
        if self._func_depth > 0:
            for target in node.targets:
                self._record_subscript_mutation(target)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        if self._func_depth > 0:
            self._record_subscript_mutation(node.target)
        self.generic_visit(node)

    def _record_subscript_mutation(self, target: ast.AST) -> None:
        if isinstance(target, ast.Subscript) \
                and isinstance(target.value, ast.Name):
            self.info.mutated_names.add(target.value.id)

    def _is_mutable_value(self, value: ast.AST) -> bool:
        if isinstance(value, (ast.List, ast.Dict, ast.Set, ast.ListComp,
                              ast.DictComp, ast.SetComp)):
            return True
        if isinstance(value, ast.Call):
            resolved = self.info.resolve(_dotted(value.func))
            return resolved in _MUTABLE_FACTORIES
        return False

    def _record_obs_registration(self, attr: str, value: ast.AST) -> None:
        if not isinstance(value, ast.Call) \
                or not isinstance(value.func, ast.Attribute) \
                or value.func.attr not in _OBS_INSTRUMENT_FACTORIES:
            return
        if value.args and isinstance(value.args[0], ast.Constant) \
                and isinstance(value.args[0].value, str):
            self.info.obs_registrations[attr] = value.args[0].value

    # -- calls -------------------------------------------------------------
    def visit_Call(self, node: ast.Call) -> None:
        resolved = self.info.resolve(_dotted(node.func))
        if resolved == "importlib.import_module" and node.args \
                and isinstance(node.args[0], ast.Constant) \
                and isinstance(node.args[0].value, str):
            self.info.imports.add(node.args[0].value)
        if resolved in ("random.Random", "numpy.random.default_rng"):
            seed = node.args[0] if node.args else None
            self.info.rng_calls.append(
                (node.lineno, node.col_offset, resolved, seed))
        if self._func_depth > 0 and isinstance(node.func, ast.Name) \
                and node.func.id == "next" and node.args \
                and isinstance(node.args[0], ast.Name):
            self.info.mutated_names.add(node.args[0].id)
        if self._func_depth > 0 and isinstance(node.func, ast.Attribute) \
                and node.func.attr in _MUTATING_METHODS \
                and isinstance(node.func.value, ast.Name):
            self.info.mutated_names.add(node.func.value.id)
        self._record_obs_touch(node)
        self.generic_visit(node)

    def _record_obs_touch(self, node: ast.Call) -> None:
        func = node.func
        if not (isinstance(func, ast.Attribute)
                and func.attr in _OBS_TOUCH_METHODS
                and isinstance(func.value, ast.Attribute)):
            return
        instrument = func.value
        receiver = instrument.value
        tail = (receiver.attr if isinstance(receiver, ast.Attribute)
                else receiver.id if isinstance(receiver, ast.Name)
                else None)
        if tail == "obs":
            self.info.obs_touches.append(
                (instrument.attr, node.lineno, node.col_offset))

    # -- module-level constants --------------------------------------------
    def visit_Module(self, node: ast.Module) -> None:
        for stmt in node.body:
            if isinstance(stmt, ast.Assign) \
                    and len(stmt.targets) == 1 \
                    and isinstance(stmt.targets[0], ast.Name) \
                    and stmt.targets[0].id == "DIGEST_EXCLUDED_PREFIXES" \
                    and isinstance(stmt.value, ast.Tuple):
                values = [e.value for e in stmt.value.elts
                          if isinstance(e, ast.Constant)
                          and isinstance(e.value, str)]
                self.info.digest_prefixes = tuple(values)
        self.generic_visit(node)


class Program:
    """The parsed program: modules, import graph, class hierarchy."""

    def __init__(self, modules: Dict[str, ModuleInfo]):
        self.modules = modules
        self.classes: Dict[str, ClassInfo] = {
            c.dotted: c for m in modules.values() for c in m.classes}
        self.import_graph: Dict[str, Set[str]] = {
            name: self._edges(info) for name, info in modules.items()}

    def _edges(self, info: ModuleInfo) -> Set[str]:
        deps: Set[str] = set()
        for target in info.imports:
            resolved = self._resolve_module(target)
            if resolved and resolved != info.name:
                deps.add(resolved)
        return deps

    def _resolve_module(self, dotted: str) -> Optional[str]:
        """Longest collected-module prefix of ``dotted``."""
        parts = dotted.split(".")
        for cut in range(len(parts), 0, -1):
            candidate = ".".join(parts[:cut])
            if candidate in self.modules:
                return candidate
        return None

    # -- class hierarchy ---------------------------------------------------
    def resolved_bases(self, cls: ClassInfo) -> List[str]:
        module = self.modules[cls.module]
        out = []
        for base in cls.bases:
            resolved = module.resolve(base)
            if resolved is None:
                continue
            if resolved not in self.classes \
                    and f"{cls.module}.{resolved}" in self.classes:
                resolved = f"{cls.module}.{resolved}"
            out.append(resolved)
        return out

    def workload_classes(self) -> Dict[str, ClassInfo]:
        """``ShardWorkload`` and every collected transitive subclass."""
        matched: Set[str] = {d for d in self.classes
                             if d.rsplit(".", 1)[-1] == _WORKLOAD_ROOT}
        changed = True
        while changed:
            changed = False
            for dotted, cls in self.classes.items():
                if dotted in matched:
                    continue
                for base in self.resolved_bases(cls):
                    if base in matched \
                            or base.rsplit(".", 1)[-1] == _WORKLOAD_ROOT:
                        matched.add(dotted)
                        changed = True
                        break
        return {d: self.classes[d] for d in matched if d in self.classes}

    def boundary_classes(self) -> Dict[str, ClassInfo]:
        """Classes that cross a pickle boundary (see module docstring)."""
        boundary = dict(self.workload_classes())
        boundary.update({d: c for d, c in self.classes.items()
                         if c.boundary_marked})
        # Composition closure: a class constructed into a boundary
        # class's field crosses the boundary with it.
        queue = list(boundary)
        while queue:
            cls = self.classes.get(queue.pop())
            if cls is None:
                continue
            module = self.modules[cls.module]
            for _attr, value, _line, _col in cls.fields:
                if not isinstance(value, ast.Call):
                    continue
                resolved = module.resolve(_dotted(value.func))
                if resolved and resolved not in self.classes \
                        and f"{cls.module}.{resolved}" in self.classes:
                    resolved = f"{cls.module}.{resolved}"
                if resolved in self.classes and resolved not in boundary:
                    boundary[resolved] = self.classes[resolved]
                    queue.append(resolved)
        return boundary

    # -- worker reachability ----------------------------------------------
    def entry_modules(self) -> Set[str]:
        entries = {name for name in self.modules
                   if tuple(name.split(".")[-2:]) in
                   (("shard", "executor"), ("shard", "supervisor"))}
        for cls in self.workload_classes().values():
            entries.add(cls.module)
        return entries

    def worker_reachable(self) -> Set[str]:
        """Modules whose code runs inside a forked shard worker."""
        seen: Set[str] = set()
        frontier = sorted(self.entry_modules())
        while frontier:
            name = frontier.pop()
            if name in seen:
                continue
            seen.add(name)
            frontier.extend(sorted(self.import_graph.get(name, ())
                                   - seen))
        return seen

    def shard_package_modules(self) -> Set[str]:
        """Modules of the shard package(s) holding the entry points."""
        packages = {name.rsplit(".", 1)[0]
                    for name in self.modules
                    if tuple(name.split(".")[-2:]) in
                    (("shard", "executor"), ("shard", "supervisor"))}
        return {name for name in self.modules
                if name.rsplit(".", 1)[0] in packages
                or name in packages}

    def digest_prefixes(self) -> Tuple[str, ...]:
        for info in self.modules.values():
            if info.digest_prefixes is not None:
                return info.digest_prefixes
        return _DEFAULT_DIGEST_EXCLUDED

    def obs_instrument_map(self) -> Dict[str, str]:
        merged: Dict[str, str] = {}
        for name in sorted(self.modules):
            merged.update(self.modules[name].obs_registrations)
        return merged


def load_program(paths: Sequence[str]) -> Program:
    """Parse every ``*.py`` under ``paths`` into a :class:`Program`."""
    modules: Dict[str, ModuleInfo] = {}
    for path in iter_python_files(paths):
        try:
            source = path.read_text(encoding="utf-8")
        except OSError as exc:
            raise LintError(f"{path}: {exc}") from exc
        try:
            tree = ast.parse(source, filename=str(path))
        except SyntaxError as exc:
            raise LintError(
                f"{path}: {exc.msg} (line {exc.lineno})") from exc
        info = ModuleInfo(module_name_for(path), path, source, tree)
        _ModuleCollector(info, path.stem == "__init__").visit(tree)
        modules[info.name] = info
    return Program(modules)


# -- rule evaluation -------------------------------------------------------

def _slots_closed(program: Program, cls: ClassInfo,
                  seen: Optional[Set[str]] = None) -> bool:
    """True when the class and all collected ancestors define slots."""
    seen = seen or set()
    if cls.dotted in seen:
        return True
    seen.add(cls.dotted)
    if not cls.has_slots:
        return False
    for base in program.resolved_bases(cls):
        ancestor = program.classes.get(base)
        if ancestor is not None \
                and not _slots_closed(program, ancestor, seen):
            return False
    return True


def _check_pickle_boundary(program: Program) -> List[Finding]:
    findings = []
    for dotted in sorted(program.boundary_classes()):
        cls = program.classes[dotted]
        module = program.modules[cls.module]
        path = str(module.path)
        if not _slots_closed(program, cls):
            findings.append(Finding(
                path, cls.lineno, cls.col, "VIA012",
                f"{cls.name} crosses a shard pickle boundary but is not "
                f"__slots__-closed; add __slots__ to it (and every "
                f"ancestor) so replayed workers cannot grow a __dict__"))
        for attr, value, lineno, col in cls.fields:
            reason = None
            if isinstance(value, ast.Lambda):
                reason = "a lambda (unpicklable)"
            elif isinstance(value, ast.GeneratorExp):
                reason = "a generator (unpicklable)"
            elif isinstance(value, ast.Call):
                resolved = module.resolve(_dotted(value.func))
                if resolved in _UNPICKLABLE_CALLS:
                    reason = f"{resolved}() (unpicklable at the pipe)"
            if reason:
                findings.append(Finding(
                    path, lineno, col, "VIA012",
                    f"{cls.name}.{attr} holds {reason}; boundary-class "
                    f"fields must pickle"))
    return findings


def _check_mutable_globals(program: Program) -> List[Finding]:
    findings = []
    for name in sorted(program.worker_reachable()):
        info = program.modules[name]
        path = str(info.path)
        flagged: Set[str] = set()
        for binding, (lineno, col) in sorted(info.mutable_decls.items()):
            if binding in info.mutated_names \
                    or binding in info.global_rebinds:
                flagged.add(binding)
                findings.append(Finding(
                    path, lineno, col, "VIA013",
                    f"module-level mutable {binding!r} is mutated at "
                    f"runtime and reachable from shard workers; each "
                    f"forked worker mutates a diverging copy"))
        for binding, (lineno, col) in sorted(info.global_rebinds.items()):
            if binding not in flagged:
                findings.append(Finding(
                    path, lineno, col, "VIA013",
                    f"global {binding!r} is rebound at runtime in "
                    f"worker-reachable code; per-process copies diverge "
                    f"after fork"))
    return findings


def _check_digest_hygiene(program: Program) -> List[Finding]:
    findings = []
    instruments = program.obs_instrument_map()
    prefixes = program.digest_prefixes()
    for name in sorted(program.shard_package_modules()):
        info = program.modules[name]
        path = str(info.path)
        for attr, lineno, col in info.obs_touches:
            metric = instruments.get(attr)
            if metric is None:
                continue
            if not metric.startswith(prefixes):
                findings.append(Finding(
                    path, lineno, col, "VIA014",
                    f"recovery/supervision path touches obs instrument "
                    f"{attr!r} registered as {metric!r}, which is not "
                    f"digest-excluded (prefixes: "
                    f"{', '.join(prefixes)}); a worker restart would "
                    f"change the metrics digest"))
    return findings


def _is_derived_seed(module: ModuleInfo, seed: ast.AST) -> bool:
    if not isinstance(seed, ast.Call):
        return False
    resolved = module.resolve(_dotted(seed.func)) or ""
    return resolved.rsplit(".", 1)[-1] == "derive_seed"


def _check_rng_discipline(program: Program) -> List[Finding]:
    findings = []
    for name in sorted(program.worker_reachable()):
        info = program.modules[name]
        path = str(info.path)
        for lineno, col, ctor, seed in info.rng_calls:
            if seed is None:          # unseeded: per-file VIA007's job
                continue
            if not _is_derived_seed(info, seed):
                findings.append(Finding(
                    path, lineno, col, "VIA015",
                    f"{ctor}(...) in worker-reachable code must seed "
                    f"via derive_seed(master, stream) so shards draw "
                    f"from disjoint, master-seed-coupled streams"))
    return findings


def check_program(program: Program,
                  select: Optional[Iterable[str]] = None) -> List[Finding]:
    """Run every VIA012+ rule; pragma-suppressed findings are dropped."""
    chosen = normalize_select(select) & frozenset(SHARD_RULES)
    findings = []
    findings.extend(_check_pickle_boundary(program))
    findings.extend(_check_mutable_globals(program))
    findings.extend(_check_digest_hygiene(program))
    findings.extend(_check_rng_discipline(program))
    silenced: Dict[str, Dict[int, frozenset]] = {}
    kept = []
    for finding in findings:
        if finding.rule_id not in chosen:
            continue
        if finding.path not in silenced:
            info = next(m for m in program.modules.values()
                        if str(m.path) == finding.path)
            silenced[finding.path] = suppressions(info.source, info.tree)
        if finding.rule_id in silenced[finding.path].get(
                finding.line, frozenset()):
            continue
        kept.append(finding)
    kept.sort()
    return kept


def shardcheck_paths(paths: Sequence[str],
                     select: Optional[Iterable[str]] = None
                     ) -> List[Finding]:
    """Analyze every module under ``paths``; returns sorted findings."""
    return check_program(load_program(paths), select)
