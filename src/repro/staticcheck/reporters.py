"""Finding reporters: human text and machine JSON.

Both are deterministic functions of the finding list (sorted input,
sorted keys) so CI diffs and digests are stable.
"""

from __future__ import annotations

import json
from typing import Dict, List

from .rules import ALL_RULES, RULES, Finding

#: Version of the JSON report shape.  Bump only when a field is
#: renamed, removed, or changes meaning — adding fields is compatible.
#: CI consumers gate on this instead of sniffing keys.
LINT_SCHEMA_VERSION = 1


def render_text(findings: List[Finding], statistics: bool = False) -> str:
    """One line per finding, plus an optional per-rule tally."""
    lines = [f.render() for f in findings]
    if statistics and findings:
        lines.append("")
        for rule_id, count in sorted(count_by_rule(findings).items()):
            lines.append(f"{rule_id:8s} {count:4d}  "
                         f"{ALL_RULES[rule_id].title}")
    if not findings:
        lines.append("clean: no determinism hazards found")
    else:
        lines.append(f"{len(findings)} finding"
                     f"{'s' if len(findings) != 1 else ''}")
    return "\n".join(lines)


def render_json(findings: List[Finding]) -> str:
    """A stable JSON document (sorted findings, sorted keys)."""
    payload = {
        "schema_version": LINT_SCHEMA_VERSION,
        "findings": [f._asdict() for f in findings],
        "counts": count_by_rule(findings),
        "total": len(findings),
    }
    return json.dumps(payload, indent=2, sort_keys=True)


def render_rule_catalog() -> str:
    """The rule table (``repro lint --list-rules``).

    Per-file rules first, then the whole-program shard rules emitted by
    ``repro shardcheck``.
    """
    lines = []
    for rule_id in sorted(ALL_RULES):
        rule = ALL_RULES[rule_id]
        scope = "" if rule_id in RULES else "  [shardcheck]"
        lines.append(f"{rule_id}  {rule.title}{scope}")
        lines.append(f"        {rule.rationale}")
    return "\n".join(lines)


def count_by_rule(findings: List[Finding]) -> Dict[str, int]:
    counts: Dict[str, int] = {}
    for finding in findings:
        counts[finding.rule_id] = counts.get(finding.rule_id, 0) + 1
    return counts
