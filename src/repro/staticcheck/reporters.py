"""Finding reporters: human text and machine JSON.

Both are deterministic functions of the finding list (sorted input,
sorted keys) so CI diffs and digests are stable.
"""

from __future__ import annotations

import json
from typing import Dict, List

from .rules import RULES, Finding


def render_text(findings: List[Finding], statistics: bool = False) -> str:
    """One line per finding, plus an optional per-rule tally."""
    lines = [f.render() for f in findings]
    if statistics and findings:
        lines.append("")
        for rule_id, count in sorted(count_by_rule(findings).items()):
            lines.append(f"{rule_id:8s} {count:4d}  "
                         f"{RULES[rule_id].title}")
    if not findings:
        lines.append("clean: no determinism hazards found")
    else:
        lines.append(f"{len(findings)} finding"
                     f"{'s' if len(findings) != 1 else ''}")
    return "\n".join(lines)


def render_json(findings: List[Finding]) -> str:
    """A stable JSON document (sorted findings, sorted keys)."""
    payload = {
        "findings": [f._asdict() for f in findings],
        "counts": count_by_rule(findings),
        "total": len(findings),
    }
    return json.dumps(payload, indent=2, sort_keys=True)


def render_rule_catalog() -> str:
    """The rule table (``repro lint --list-rules``)."""
    lines = []
    for rule_id in sorted(RULES):
        rule = RULES[rule_id]
        lines.append(f"{rule_id}  {rule.title}")
        lines.append(f"        {rule.rationale}")
    return "\n".join(lines)


def count_by_rule(findings: List[Finding]) -> Dict[str, int]:
    counts: Dict[str, int] = {}
    for finding in findings:
        counts[finding.rule_id] = counts.get(finding.rule_id, 0) + 1
    return counts
