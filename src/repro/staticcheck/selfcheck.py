"""Self-lint: run the determinism linter over this installation's own
``repro`` package.

CI runs ``repro lint src/`` from a checkout; tests and embedded users
call :func:`lint_self`, which resolves the package directory from the
import system so it works from any working directory (editable install,
wheel, or PYTHONPATH=src).
"""

from __future__ import annotations

import pathlib
from typing import List, Optional

from .engine import lint_paths
from .rules import Finding


def package_root() -> pathlib.Path:
    """The directory of the installed ``repro`` package."""
    return pathlib.Path(__file__).resolve().parent.parent


def lint_self(select: Optional[List[str]] = None) -> List[Finding]:
    """Lint every module of the installed ``repro`` package."""
    return lint_paths([str(package_root())], select=select)
