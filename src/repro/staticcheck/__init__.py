"""repro.staticcheck — the standing static-correctness gate.

Two layers:

* a **determinism linter** (rules VIA001+, :mod:`repro.staticcheck.rules`)
  that walks the repo's own modules and flags nondeterminism hazards —
  global RNG use, wall-clock reads, unordered set expansion, unsorted
  JSON digests, allocator-dependent ordering — with per-line suppression
  pragmas and text/JSON reporters (``repro lint``, ``make lint``, CI);
* a **whole-program shard-safety analyzer**
  (:mod:`repro.staticcheck.shardcheck`, rules VIA012+) that builds the
  import graph, computes worker-reachable code, and checks the
  multiprocess shard plane's cross-file contract — pickle-boundary
  closure, forked mutable globals, digest-excluded recovery metrics,
  ``derive_seed`` discipline (``repro shardcheck``, ``make shardcheck``);
* a **static admission verifier**
  (:class:`~repro.staticcheck.admission.AdmissionVerifier`) that vets a
  docked shuttle's payload — directive schemas, knowledge-quantum
  bounds, construction-time manifests, a determinism lint of carried
  code — and rejects poison payloads *before*
  ``Ship._apply_directive`` executes anything.
"""

from .admission import (DIRECTIVE_SCHEMAS, MAX_DIRECTIVES,
                        MAX_QUANTUM_BYTES, MAX_QUANTUM_FACTS,
                        MAX_SHUTTLE_BYTES, REQUIRED_ACTIONS,
                        AdmissionVerifier, Verdict)
from .engine import (LintError, iter_python_files, lint_paths,
                     lint_source, normalize_select)
from .reporters import (count_by_rule, render_json, render_rule_catalog,
                        render_text)
from .reporters import LINT_SCHEMA_VERSION
from .rules import (ALL_RULES, MOBILE_CODE_RULES, RULES, SHARD_RULES,
                    DeterminismVisitor, Finding)
from .selfcheck import lint_self, package_root
from .shardcheck import (Program, check_program, load_program,
                         shardcheck_paths)

__all__ = [
    "RULES", "SHARD_RULES", "ALL_RULES", "MOBILE_CODE_RULES",
    "Finding", "DeterminismVisitor",
    "LintError", "lint_source", "lint_paths", "iter_python_files",
    "normalize_select",
    "render_text", "render_json", "render_rule_catalog", "count_by_rule",
    "AdmissionVerifier", "Verdict", "DIRECTIVE_SCHEMAS",
    "REQUIRED_ACTIONS", "MAX_DIRECTIVES", "MAX_SHUTTLE_BYTES",
    "MAX_QUANTUM_FACTS", "MAX_QUANTUM_BYTES",
    "lint_self", "package_root",
    "LINT_SCHEMA_VERSION",
    "Program", "load_program", "check_program", "shardcheck_paths",
]
