"""The determinism rule catalog (VIA001+) and its AST visitor.

The whole reproduction rests on one invariant: a run is a pure function
of the master seed.  Every stochastic component draws from a named
:class:`~repro.substrates.sim.rng.RngRegistry` stream; run digests
(``repro chaos``) fold deterministic counts; the event heap breaks ties
by insertion sequence.  One stray ``time.time()`` or unordered ``set``
expansion in a hot path silently breaks every digest-based test — so
these rules make the hazards *statically* visible.

Each rule is registered in :data:`RULES` (id -> :class:`Rule`) and
implemented inside :class:`DeterminismVisitor`; the engine drives the
visitor over a parsed module and applies suppression pragmas
(``# via: ignore[VIA003] reason``) afterwards.
"""

from __future__ import annotations

import ast
from typing import Dict, List, NamedTuple, Optional, Tuple


class Rule(NamedTuple):
    """One lint rule: identifier, short title and the hazard it guards."""

    rule_id: str
    title: str
    rationale: str


RULES: Dict[str, Rule] = {r.rule_id: r for r in (
    Rule("VIA001", "global-random",
         "Module-level `random` functions share one hidden global stream; "
         "any new call site perturbs every later draw of every other "
         "component.  Draw from a named RngRegistry stream instead."),
    Rule("VIA002", "numpy-global-random",
         "`numpy.random.*` legacy functions mutate numpy's global "
         "generator.  Use `sim.rng.np_stream(name)`."),
    Rule("VIA003", "wall-clock",
         "Wall-clock and entropy sources (`time.time`, `datetime.now`, "
         "`os.urandom`, `uuid.uuid4`, ...) make a run depend on the host "
         "instead of the master seed.  Simulation code must read "
         "`sim.now`."),
    Rule("VIA004", "set-iteration",
         "Iterating or expanding a `set` yields hash order, which is "
         "salted per process for strings.  Wrap the expansion in "
         "`sorted(...)` before it can feed scheduling or digests."),
    Rule("VIA005", "unsorted-json",
         "`json.dumps` without `sort_keys=True` serializes dicts in "
         "insertion order; two equal states can fold to different "
         "digests.  Pass `sort_keys=True`."),
    Rule("VIA006", "id-ordering",
         "`id()` values depend on the allocator; using them as keys or "
         "sort tiebreakers makes ordering differ between runs.  Key on a "
         "stable attribute instead."),
    Rule("VIA007", "unseeded-rng",
         "`random.Random()` / `np.random.default_rng()` without a seed "
         "(and `SystemRandom` always) seed from OS entropy.  Derive the "
         "seed from the registry (`derive_seed`)."),
    Rule("VIA008", "env-dependence",
         "Reading `os.environ` makes behaviour depend on the invoking "
         "shell.  Thread configuration through explicit parameters."),
    Rule("VIA009", "salted-hash",
         "Builtin `hash()` of a str is salted per process "
         "(PYTHONHASHSEED); values must never feed ordering, digests or "
         "exported state."),
    Rule("VIA010", "fs-order",
         "`os.listdir`/`glob`/`Path.iterdir` return files in filesystem "
         "order.  Wrap the call in `sorted(...)`."),
    Rule("VIA011", "computed-stream-name",
         "RNG stream names must be constants, attributes or f-strings — "
         "a computed expression hides which stream a component owns and "
         "invites collisions that couple independent components."),
)}

#: Whole-program shard-safety rules.  These need cross-file context
#: (import graph, class hierarchy, obs registration sites) so they are
#: implemented in :mod:`repro.staticcheck.shardcheck`, not in the
#: per-file :class:`DeterminismVisitor` — but they share the pragma
#: namespace: ``# via: ignore[VIA013] reason`` works for both tools.
SHARD_RULES: Dict[str, Rule] = {r.rule_id: r for r in (
    Rule("VIA012", "pickle-boundary",
         "Classes shipped over executor pipes or journaled by "
         "EpochJournal must be `__slots__`-closed and hold only "
         "picklable fields — an open file, lock or lambda in a handoff "
         "dies at the pipe, and a stray `__dict__` lets replayed "
         "workers diverge from the original's attribute layout."),
    Rule("VIA013", "worker-mutable-global",
         "Module-level mutable state reachable from shard worker code "
         "is aliased per process after fork: each worker mutates its "
         "own copy and the copies silently diverge.  Keep state on the "
         "simulator, or document why fork inheritance is deterministic."),
    Rule("VIA014", "digest-included-recovery-metric",
         "Obs instruments touched on recovery/supervision paths must "
         "register under a digest-excluded prefix (see "
         "DIGEST_EXCLUDED_PREFIXES) — a restart would otherwise change "
         "the metrics digest and break digest-identical recovery."),
    Rule("VIA015", "underived-worker-seed",
         "RNG constructors in worker-reachable code must seed via "
         "`derive_seed(master, stream)` — a raw integer seed collides "
         "across shards and decouples the stream from the master seed."),
)}

#: Every rule either tool can emit (and every valid pragma id).
ALL_RULES: Dict[str, Rule] = {**RULES, **SHARD_RULES}

#: Rules whose presence in *mobile code* (shuttle-carried modules) makes
#: the payload unsafe to admit: they would perturb the host ship's run
#: the moment the code executes.
MOBILE_CODE_RULES: Tuple[str, ...] = ("VIA001", "VIA002", "VIA003",
                                      "VIA007", "VIA008")


class Finding(NamedTuple):
    """One lint hit, sortable by location."""

    path: str
    line: int
    col: int
    rule_id: str
    message: str

    def render(self) -> str:
        return (f"{self.path}:{self.line}:{self.col}: "
                f"{self.rule_id} {self.message}")


#: Dotted call paths that are wall-clock / entropy reads (VIA003).
_WALLCLOCK = frozenset({
    "time.time", "time.time_ns", "time.monotonic", "time.monotonic_ns",
    "time.perf_counter", "time.perf_counter_ns",
    "datetime.datetime.now", "datetime.datetime.utcnow",
    "datetime.datetime.today", "datetime.date.today",
    "os.urandom", "uuid.uuid1", "uuid.uuid4",
})

#: Filesystem-enumeration calls (VIA010) by dotted path ...
_FS_CALLS = frozenset({
    "os.listdir", "os.scandir", "os.walk", "glob.glob", "glob.iglob",
})
#: ... and by method name on an arbitrary receiver (pathlib idiom).
_FS_METHODS = frozenset({"iterdir", "rglob"})

#: Single-argument builtins that materialize their argument's iteration
#: order (VIA004 when the argument is a set expression).
_ORDER_SENSITIVE_BUILTINS = frozenset({"list", "tuple", "enumerate",
                                       "iter"})

#: Modules whose import aliases the visitor tracks.
_TRACKED_MODULES = frozenset({"random", "numpy", "time", "datetime",
                              "os", "json", "glob", "uuid", "secrets"})


class DeterminismVisitor(ast.NodeVisitor):
    """Walks one module and collects raw findings (pre-suppression)."""

    def __init__(self, path: str):
        self.path = path
        self.findings: List[Finding] = []
        #: local alias -> canonical module name (``np`` -> ``numpy``).
        self._modules: Dict[str, str] = {}
        #: local name -> dotted origin (``perf_counter`` ->
        #: ``time.perf_counter``; ``datetime`` -> ``datetime.datetime``).
        self._from: Dict[str, str] = {}

    # -- plumbing ----------------------------------------------------------
    def _hit(self, node: ast.AST, rule_id: str, message: str) -> None:
        self.findings.append(Finding(self.path, node.lineno,
                                     node.col_offset, rule_id, message))

    def _dotted(self, node: ast.AST) -> Optional[str]:
        """Resolve an expression to a canonical dotted path, or None."""
        parts: List[str] = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        root = node.id
        origin = self._from.get(root)
        if origin is not None:
            parts.append(origin)
        else:
            parts.append(self._modules.get(root, root))
        return ".".join(reversed(parts))

    @staticmethod
    def _is_set_expr(node: ast.AST) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        return (isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id in ("set", "frozenset"))

    @staticmethod
    def _sanctioned(node: ast.AST) -> bool:
        return getattr(node, "_via_sanctioned", False)

    # -- imports -----------------------------------------------------------
    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            top = alias.name.split(".")[0]
            if top in _TRACKED_MODULES:
                self._modules[alias.asname or alias.name] = alias.name
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module and node.module.split(".")[0] in _TRACKED_MODULES:
            for alias in node.names:
                self._from[alias.asname or alias.name] = \
                    f"{node.module}.{alias.name}"
        self.generic_visit(node)

    # -- iteration contexts (VIA004) ---------------------------------------
    def visit_For(self, node: ast.For) -> None:
        if self._is_set_expr(node.iter):
            self._hit(node.iter, "VIA004",
                      "iteration over a set expression; wrap in sorted()")
        self.generic_visit(node)

    def _check_comprehension(self, node) -> None:
        for gen in node.generators:
            if self._is_set_expr(gen.iter):
                self._hit(gen.iter, "VIA004",
                          "comprehension over a set expression; wrap in "
                          "sorted()")
        self.generic_visit(node)

    visit_ListComp = _check_comprehension
    visit_SetComp = _check_comprehension
    visit_GeneratorExp = _check_comprehension
    visit_DictComp = _check_comprehension

    # -- attribute reads (VIA008) ------------------------------------------
    def visit_Attribute(self, node: ast.Attribute) -> None:
        if (isinstance(node.value, ast.Name)
                and self._dotted(node) == "os.environ"):
            self._hit(node, "VIA008", "os.environ read")
        self.generic_visit(node)

    # -- calls (everything else) -------------------------------------------
    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Name) and func.id == "sorted":
            # Direct arguments of sorted() are order-sanctioned.
            for arg in node.args:
                arg._via_sanctioned = True  # type: ignore[attr-defined]
        path = self._dotted(func)
        if path is not None:
            self._check_call_path(node, path)
        if isinstance(func, ast.Name):
            self._check_builtin_call(node, func.id)
        if isinstance(func, ast.Attribute):
            if (func.attr in _FS_METHODS
                    and not self._sanctioned(node)):
                self._hit(node, "VIA010",
                          f".{func.attr}() yields filesystem order; wrap "
                          f"in sorted()")
            if func.attr in ("stream", "np_stream"):
                self._check_stream_name(node)
        if (isinstance(func, ast.Name) and func.id
                in _ORDER_SENSITIVE_BUILTINS and len(node.args) == 1
                and self._is_set_expr(node.args[0])):
            self._hit(node, "VIA004",
                      f"{func.id}() over a set expression; wrap in "
                      f"sorted()")
        self.generic_visit(node)

    def _check_call_path(self, node: ast.Call, path: str) -> None:
        if path in ("random.Random", "numpy.random.default_rng"):
            if not node.args:
                self._hit(node, "VIA007",
                          f"{path}() without a seed; derive one from the "
                          f"RngRegistry")
            return
        if path == "random.SystemRandom" or path.startswith("secrets."):
            self._hit(node, "VIA007", f"{path} draws OS entropy")
            return
        if path.startswith("random.") and path.count(".") == 1:
            self._hit(node, "VIA001",
                      f"{path}() uses the global random stream; use "
                      f"sim.rng.stream(name)")
            return
        if path.startswith("numpy.random."):
            self._hit(node, "VIA002",
                      f"{path}() mutates numpy's global generator; use "
                      f"sim.rng.np_stream(name)")
            return
        if path in _WALLCLOCK:
            self._hit(node, "VIA003",
                      f"{path}() reads the host clock/entropy; simulation "
                      f"code must use sim.now")
            return
        if path == "json.dumps" and not self._sorts_keys(node):
            self._hit(node, "VIA005",
                      "json.dumps without sort_keys=True")
            return
        if path == "os.getenv":
            self._hit(node, "VIA008", "os.getenv read")
            return
        if path in _FS_CALLS and not self._sanctioned(node):
            self._hit(node, "VIA010",
                      f"{path}() yields filesystem order; wrap in "
                      f"sorted()")

    def _check_builtin_call(self, node: ast.Call, name: str) -> None:
        if name in self._from or name in self._modules:
            return  # shadowed by an import; handled via dotted path
        if name == "id" and node.args:
            self._hit(node, "VIA006",
                      "id() is allocator-dependent; key on a stable "
                      "attribute")
        elif name == "hash" and node.args:
            self._hit(node, "VIA009",
                      "hash() is salted per process; must not feed "
                      "ordering or digests")

    @staticmethod
    def _sorts_keys(node: ast.Call) -> bool:
        for kw in node.keywords:
            if kw.arg == "sort_keys":
                if isinstance(kw.value, ast.Constant):
                    return bool(kw.value.value)
                return True  # dynamic value: give the benefit of the doubt
        return False

    def _check_stream_name(self, node: ast.Call) -> None:
        if not node.args:
            return
        arg = node.args[0]
        if isinstance(arg, ast.Constant):
            if not (isinstance(arg.value, str) and arg.value):
                self._hit(node, "VIA011",
                          "stream name must be a non-empty string")
            return
        if isinstance(arg, (ast.JoinedStr, ast.Name, ast.Attribute)):
            return
        self._hit(node, "VIA011",
                  "stream name must be a constant, attribute or f-string")
