"""Lint driver: parse modules, run the rule visitor, apply pragmas.

Suppression pragma grammar (recorded with justification, per the
project's determinism policy)::

    x = perf_counter()     # via: ignore[VIA003] host-side profiling only
    # via: ignore[VIA006,VIA009] intra-process key, never exported
    key = id(obj)

An id-less ``# via: ignore`` silences every rule on its line.  A pragma
on a comment-only line applies to the next line, so justifications fit
the 79-column layout.
"""

from __future__ import annotations

import ast
import pathlib
import re
from typing import Dict, Iterable, List, Optional, Sequence, Set

from .rules import RULES, DeterminismVisitor, Finding

_PRAGMA = re.compile(r"#\s*via:\s*ignore(?:\[([A-Z0-9,\s]+)\])?")
#: Matches every rule on the line when the pragma names none.
_ALL = frozenset(RULES)


class LintError(Exception):
    """Raised for unparseable input or unknown rule selections."""


def _suppressions(source: str) -> Dict[int, frozenset]:
    """Map line number -> rule ids silenced there (1-based)."""
    table: Dict[int, frozenset] = {}
    for lineno, line in enumerate(source.splitlines(), start=1):
        match = _PRAGMA.search(line)
        if match is None:
            continue
        ids = (frozenset(part.strip() for part in match.group(1).split(",")
                         if part.strip())
               if match.group(1) else _ALL)
        unknown = ids - _ALL
        if unknown:
            raise LintError(
                f"line {lineno}: unknown rule(s) in pragma: "
                f"{', '.join(sorted(unknown))}")
        table[lineno] = table.get(lineno, frozenset()) | ids
        if line.lstrip().startswith("#"):
            # Comment-only pragma covers the following line too.
            table[lineno + 1] = table.get(lineno + 1, frozenset()) | ids
    return table


def normalize_select(select: Optional[Iterable[str]]) -> frozenset:
    """Validate a rule selection; None selects every rule."""
    if select is None:
        return _ALL
    chosen = frozenset(select)
    unknown = chosen - _ALL
    if unknown:
        raise LintError(f"unknown rule(s): {', '.join(sorted(unknown))}")
    return chosen


def lint_source(source: str, path: str = "<string>",
                select: Optional[Iterable[str]] = None) -> List[Finding]:
    """Lint one module's source text; returns sorted findings."""
    chosen = normalize_select(select)
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        raise LintError(f"{path}: {exc.msg} (line {exc.lineno})") from exc
    visitor = DeterminismVisitor(path)
    visitor.visit(tree)
    silenced = _suppressions(source)
    findings = [f for f in visitor.findings
                if f.rule_id in chosen
                and f.rule_id not in silenced.get(f.line, frozenset())]
    findings.sort()
    return findings


def iter_python_files(paths: Sequence[str]) -> List[pathlib.Path]:
    """Expand files/directories into a sorted, de-duplicated file list."""
    seen: Set[pathlib.Path] = set()
    ordered: List[pathlib.Path] = []
    for raw in paths:
        path = pathlib.Path(raw)
        if path.is_dir():
            candidates = sorted(path.rglob("*.py"))
        elif path.suffix == ".py":
            candidates = [path]
        else:
            raise LintError(f"{raw}: not a python file or directory")
        for candidate in candidates:
            if candidate not in seen:
                seen.add(candidate)
                ordered.append(candidate)
    return ordered


def lint_paths(paths: Sequence[str],
               select: Optional[Iterable[str]] = None) -> List[Finding]:
    """Lint every ``*.py`` under ``paths``; returns sorted findings."""
    chosen = normalize_select(select)
    findings: List[Finding] = []
    for path in iter_python_files(paths):
        try:
            source = path.read_text(encoding="utf-8")
        except OSError as exc:
            raise LintError(f"{path}: {exc}") from exc
        findings.extend(lint_source(source, str(path), chosen))
    findings.sort()
    return findings
