"""Lint driver: parse modules, run the rule visitor, apply pragmas.

Suppression pragma grammar (recorded with justification, per the
project's determinism policy)::

    x = perf_counter()     # via: ignore[VIA003] host-side profiling only
    # via: ignore[VIA006,VIA009] intra-process key, never exported
    key = id(obj)

An id-less ``# via: ignore`` silences every rule on its line.  A pragma
on a comment-only line applies to the next line, so justifications fit
the 79-column layout.

Pragmas are recognised only in real comment tokens — a pragma spelled
inside a string literal is data, not a suppression.  A pragma on any
physical line of a multi-line statement (a decorator, a continuation
line, the closing paren) covers the whole statement; for compound
statements (``def``/``if``/``for``/``class``...) coverage stops at the
header so a pragma can never silence an entire suite.
"""

from __future__ import annotations

import ast
import io
import pathlib
import re
import tokenize
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from .rules import ALL_RULES, DeterminismVisitor, Finding

_PRAGMA = re.compile(r"#\s*via:\s*ignore(?:\[([A-Z0-9,\s]+)\])?")
#: Matches every rule on the line when the pragma names none.
_ALL = frozenset(ALL_RULES)


class LintError(Exception):
    """Raised for unparseable input or unknown rule selections."""


def _raw_suppressions(source: str) -> Dict[int, frozenset]:
    """Map line number -> rule ids silenced there (1-based).

    Scans real ``COMMENT`` tokens only, so pragma text inside string
    literals (test fixtures, docstrings) never registers.
    """
    table: Dict[int, frozenset] = {}
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
    except (tokenize.TokenError, IndentationError, SyntaxError) as exc:
        raise LintError(f"tokenize failed: {exc}") from exc
    for tok in tokens:
        if tok.type != tokenize.COMMENT:
            continue
        match = _PRAGMA.search(tok.string)
        if match is None:
            continue
        lineno = tok.start[0]
        ids = (frozenset(part.strip() for part in match.group(1).split(",")
                         if part.strip())
               if match.group(1) else _ALL)
        unknown = ids - _ALL
        if unknown:
            raise LintError(
                f"line {lineno}: unknown rule(s) in pragma: "
                f"{', '.join(sorted(unknown))}")
        table[lineno] = table.get(lineno, frozenset()) | ids
        if tok.line[:tok.start[1]].strip() == "":
            # Comment-only pragma covers the following line too.
            table[lineno + 1] = table.get(lineno + 1, frozenset()) | ids
    return table


def _statement_spans(tree: ast.AST) -> List[Tuple[int, int]]:
    """(first, last) physical-line spans a pragma should cover as one.

    Simple statements span all their physical lines.  Compound
    statements contribute only their *header* (decorators, signature or
    condition continuation lines, up to the line before the first body
    statement) so a pragma on a ``def`` line never silences the body.
    """
    spans: List[Tuple[int, int]] = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.stmt):
            continue
        start = node.lineno
        end = getattr(node, "end_lineno", None) or node.lineno
        body = getattr(node, "body", None)
        if isinstance(body, list) and body and isinstance(body[0], ast.stmt):
            # Compound statement: clamp to the header.
            decorators = getattr(node, "decorator_list", None) or []
            for dec in decorators:
                start = min(start, dec.lineno)
                spans.append((dec.lineno, dec.end_lineno or dec.lineno))
            end = max(start, body[0].lineno - 1)
        elif isinstance(node, ast.Match) and node.cases:
            end = max(start, node.cases[0].pattern.lineno - 1)
        spans.append((start, end))
    return spans


def _expand_suppressions(table: Dict[int, frozenset],
                         tree: ast.AST) -> Dict[int, frozenset]:
    """Spread each pragma across the statement span containing it."""
    expanded = dict(table)
    if not table:
        return expanded
    for start, end in _statement_spans(tree):
        if end <= start:
            continue
        ids = frozenset().union(
            *(table.get(line, frozenset())
              for line in range(start, end + 1)))
        if not ids:
            continue
        for line in range(start, end + 1):
            expanded[line] = expanded.get(line, frozenset()) | ids
    return expanded


def suppressions(source: str, tree: Optional[ast.AST] = None
                 ) -> Dict[int, frozenset]:
    """Full suppression table for a module: pragmas + span expansion.

    Shared by the per-file linter and the whole-program shard checker so
    ``# via: ignore[...]`` means the same thing to both.
    """
    table = _raw_suppressions(source)
    if tree is None:
        try:
            tree = ast.parse(source)
        except SyntaxError as exc:
            raise LintError(
                f"{exc.msg} (line {exc.lineno})") from exc
    return _expand_suppressions(table, tree)


def normalize_select(select: Optional[Iterable[str]]) -> frozenset:
    """Validate a rule selection; None selects every rule."""
    if select is None:
        return _ALL
    chosen = frozenset(select)
    unknown = chosen - _ALL
    if unknown:
        raise LintError(f"unknown rule(s): {', '.join(sorted(unknown))}")
    return chosen


def lint_source(source: str, path: str = "<string>",
                select: Optional[Iterable[str]] = None) -> List[Finding]:
    """Lint one module's source text; returns sorted findings."""
    chosen = normalize_select(select)
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        raise LintError(f"{path}: {exc.msg} (line {exc.lineno})") from exc
    visitor = DeterminismVisitor(path)
    visitor.visit(tree)
    silenced = suppressions(source, tree)
    findings = [f for f in visitor.findings
                if f.rule_id in chosen
                and f.rule_id not in silenced.get(f.line, frozenset())]
    findings.sort()
    return findings


def iter_python_files(paths: Sequence[str]) -> List[pathlib.Path]:
    """Expand files/directories into a sorted, de-duplicated file list."""
    seen: Set[pathlib.Path] = set()
    ordered: List[pathlib.Path] = []
    for raw in paths:
        path = pathlib.Path(raw)
        if path.is_dir():
            candidates = sorted(path.rglob("*.py"))
        elif path.suffix == ".py":
            candidates = [path]
        else:
            raise LintError(f"{raw}: not a python file or directory")
        for candidate in candidates:
            if candidate not in seen:
                seen.add(candidate)
                ordered.append(candidate)
    return ordered


def lint_paths(paths: Sequence[str],
               select: Optional[Iterable[str]] = None) -> List[Finding]:
    """Lint every ``*.py`` under ``paths``; returns sorted findings."""
    chosen = normalize_select(select)
    findings: List[Finding] = []
    for path in iter_python_files(paths):
        try:
            source = path.read_text(encoding="utf-8")
        except OSError as exc:
            raise LintError(f"{path}: {exc}") from exc
        findings.extend(lint_source(source, str(path), chosen))
    findings.sort()
    return findings
