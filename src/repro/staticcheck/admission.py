"""Static admission verifier for mobile code (shuttles, jets, quanta).

SRP.1 demands that ships admit only well-behaved, self-describing code
("be fair and cooperative ... or be excluded"); DarwinNet-style systems
vet agent-synthesized protocol code *before* activation.  This module is
that gate: :meth:`AdmissionVerifier.vet` inspects a docked shuttle's
payload — directive schemas, knowledge-quantum well-formedness and size
bounds, the construction-time manifest, and a determinism lint of any
carried code — and returns a :class:`Verdict` *before*
``Ship._apply_directive`` executes anything.

The checks are pure: no RNG draws, no simulator events, no mutation of
the shuttle or the ship.  A rejected shuttle therefore cannot perturb
the run digest of unaffected traffic, which the chaos/digest tests rely
on.

Two modes:

* **structural** (the ship-dock default): reject payloads that could
  never apply cleanly under any credential — unknown ops, malformed or
  mistyped arguments, oversized or ill-formed quanta, tampered
  manifests, nondeterminism hazards in carried code.  Authorization
  stays a per-directive runtime concern so partially-authorized
  shuttles keep their paper semantics (apply what you may, deny the
  rest).
* **authorization** (``check_authorization=True``): additionally prove,
  against the receiving ship's :class:`SecurityManager` policy, that
  every directive's required action would be granted — the sender-side
  "will this shuttle land?" precheck.
"""

from __future__ import annotations

import hashlib
import inspect
import json
from collections import OrderedDict
from typing import Dict, List, NamedTuple, Optional, Tuple

from ..core.genetics import Genome
from ..core.knowledge import KnowledgeQuantum
from ..perf.switches import switches as _opt
from ..core.shuttle import (ALL_OPS, OP_ACQUIRE_ROLE, OP_ACTIVATE_ROLE,
                            OP_DEPLOY_QUANTUM, OP_INSTALL_CODE,
                            OP_INSTALL_DRIVER, OP_LOAD_BITSTREAM,
                            OP_RELEASE_ROLE, OP_REQUEST_STATE,
                            OP_SET_NEXT_STEP, OP_TRANSCRIBE_GENOME,
                            Shuttle, shuttle_manifest)
from ..substrates.hardware import Bitstream
from ..substrates.nodeos import Action, CodeModule
from .engine import lint_source
from .rules import MOBILE_CODE_RULES

# -- payload bounds (resource access control, Kulkarni & Minden) ----------
#: A quantum may carry at most this many fact snapshots ...
MAX_QUANTUM_FACTS = 64
#: ... and at most this many wire bytes.
MAX_QUANTUM_BYTES = 64 + 48 * MAX_QUANTUM_FACTS
#: One shuttle may carry at most this many directives ...
MAX_DIRECTIVES = 64
#: ... and at most this many cargo bytes.
MAX_SHUTTLE_BYTES = 1 << 20

#: op -> (required argument schema, optional argument schema); each
#: schema maps the argument name to the accepted type tuple.  ``object``
#: means "any value" (hashable addresses etc.).
DIRECTIVE_SCHEMAS: Dict[str, Tuple[Dict[str, tuple], Dict[str, tuple]]] = {
    OP_INSTALL_CODE: ({"module": (CodeModule,)}, {}),
    OP_INSTALL_DRIVER: ({"module": (CodeModule,)}, {}),
    OP_LOAD_BITSTREAM: ({"bitstream": (Bitstream,)}, {}),
    OP_ACQUIRE_ROLE: ({"role_id": (str,)},
                      {"module": (CodeModule,), "modal": (bool,)}),
    OP_ACTIVATE_ROLE: ({"role_id": (str,)}, {}),
    OP_RELEASE_ROLE: ({"role_id": (str,)}, {}),
    OP_SET_NEXT_STEP: ({"role_id": (str,)}, {}),
    OP_DEPLOY_QUANTUM: ({"quantum": (KnowledgeQuantum,)},
                        {"auto_acquire": (bool,)}),
    OP_TRANSCRIBE_GENOME: ({"genome": (Genome,)}, {"activate": (bool,)}),
    OP_REQUEST_STATE: ({}, {"reply_to": (object,)}),
}

#: op -> NodeOS action the runtime interpreter will demand (for the
#: authorization mode; mirrors Ship._apply_directive / NodeOS).
REQUIRED_ACTIONS: Dict[str, str] = {
    OP_INSTALL_CODE: Action.INSTALL_CODE,
    OP_INSTALL_DRIVER: Action.RECONFIGURE,
    OP_LOAD_BITSTREAM: Action.RECONFIGURE_HW,
    OP_ACQUIRE_ROLE: Action.RECONFIGURE,
    OP_ACTIVATE_ROLE: Action.RECONFIGURE,
    OP_RELEASE_ROLE: Action.RECONFIGURE,
    OP_TRANSCRIBE_GENOME: Action.RECONFIGURE,
    OP_REQUEST_STATE: Action.READ_STATE,
}

# Reject reason codes (stable vocabulary for obs labels and digests).
REASON_UNKNOWN_OP = "unknown-op"
REASON_MALFORMED_DIRECTIVE = "malformed-directive"
REASON_MALFORMED_QUANTUM = "malformed-quantum"
REASON_OVERSIZED_QUANTUM = "oversized-quantum"
REASON_TOO_MANY_DIRECTIVES = "too-many-directives"
REASON_OVERSIZED_SHUTTLE = "oversized-shuttle"
REASON_MANIFEST_MISMATCH = "manifest-mismatch"
REASON_CODE_HAZARD = "code-hazard"
REASON_UNAUTHORIZED_OP = "unauthorized-op"


class Verdict(NamedTuple):
    """The outcome of vetting one shuttle payload."""

    ok: bool
    reasons: Tuple[str, ...]          # "<code>: detail" per problem
    lint_rules: Tuple[str, ...]       # VIA rules hit in carried code

    @property
    def reason_code(self) -> Optional[str]:
        """The first (most severe, check order) reject code."""
        if self.ok:
            return None
        return self.reasons[0].split(":", 1)[0]

    @property
    def digest(self) -> str:
        """Deterministic fingerprint of the verdict (seed-independent)."""
        payload = json.dumps({"ok": self.ok, "reasons": list(self.reasons),
                              "lint": list(self.lint_rules)},
                             sort_keys=True)
        return hashlib.sha256(payload.encode()).hexdigest()[:16]


class AdmissionVerifier:
    """Statically vets shuttle payloads before a ship executes them.

    One verifier can serve many ships; the carried-code lint verdicts
    are cached per code entry (module + qualname) so a role class is
    analyzed once per process, not once per dock.
    """

    #: Bound on the whole-shuttle verdict memo (LRU eviction).
    VERDICT_CACHE_CAP = 4096

    def __init__(self, lint_mobile_code: bool = True):
        self.lint_mobile_code = lint_mobile_code
        self._code_verdicts: Dict[Tuple[str, str], Tuple[str, ...]] = {}
        #: Whole-shuttle verdict memo keyed by payload fingerprint
        #: (structural mode only; see :meth:`_payload_key`).
        self._verdicts: "OrderedDict[tuple, Verdict]" = OrderedDict()
        self.vets = 0
        self.rejections = 0
        self.verdict_cache_hits = 0

    # -- entry point -------------------------------------------------------
    def vet(self, shuttle: Shuttle, ship=None,
            check_authorization: bool = False) -> Verdict:
        """Inspect a shuttle's payload; returns a :class:`Verdict`.

        ``ship`` is only needed for ``check_authorization`` (its
        SecurityManager holds the policy to prove against).

        Structural-mode verdicts are memoized by a content fingerprint
        of the payload (``perf.switches.admission_memo``): an ARQ
        retransmission storm or a fleet of identical role shuttles vets
        once, not once per dock.  The fingerprint is recomputed from the
        live payload on every call, so in-place tampering (a rewritten
        op, a spliced directive) changes the key and misses the cache —
        tamper detection is never weakened, only duplicated work is.
        """
        self.vets += 1
        key = None
        if _opt.admission_memo and not check_authorization:
            key = self._payload_key(shuttle)
            if key is not None:
                cached = self._verdicts.get(key)
                if cached is not None:
                    self._verdicts.move_to_end(key)
                    self.verdict_cache_hits += 1
                    if not cached.ok:
                        self.rejections += 1
                    return cached
        verdict = self._vet_uncached(shuttle, ship, check_authorization)
        if key is not None:
            self._verdicts[key] = verdict
            while len(self._verdicts) > self.VERDICT_CACHE_CAP:
                self._verdicts.popitem(last=False)
        return verdict

    def _vet_uncached(self, shuttle: Shuttle, ship,
                      check_authorization: bool) -> Verdict:
        reasons: List[str] = []
        lint_rules: List[str] = []
        directives = shuttle.directives
        if len(directives) > MAX_DIRECTIVES:
            reasons.append(f"{REASON_TOO_MANY_DIRECTIVES}: "
                           f"{len(directives)} > {MAX_DIRECTIVES}")
        cargo = sum(d.size_bytes for d in directives)
        if cargo > MAX_SHUTTLE_BYTES:
            reasons.append(f"{REASON_OVERSIZED_SHUTTLE}: "
                           f"{cargo}B > {MAX_SHUTTLE_BYTES}B")
        declared = shuttle.meta.get("manifest")
        if declared is not None and tuple(declared) \
                != shuttle_manifest(directives):
            reasons.append(f"{REASON_MANIFEST_MISMATCH}: directives do "
                           f"not match the construction-time manifest")
        for index, directive in enumerate(directives):
            reasons.extend(self._check_directive(index, directive))
        if self.lint_mobile_code:
            for module in shuttle.carried_code():
                hits = self._lint_code_module(module)
                if hits:
                    lint_rules.extend(hits)
                    reasons.append(
                        f"{REASON_CODE_HAZARD}: {module.code_id} trips "
                        f"{','.join(hits)}")
        if check_authorization and ship is not None:
            reasons.extend(self._check_authorization(shuttle, ship))
        verdict = Verdict(ok=not reasons, reasons=tuple(reasons),
                          lint_rules=tuple(lint_rules))
        if not verdict.ok:
            self.rejections += 1
        return verdict

    # -- verdict memo ------------------------------------------------------
    @staticmethod
    def _arg_token(name: str, value) -> Optional[tuple]:
        """A hashable content token for one directive argument, or
        ``None`` when the argument cannot be fingerprinted (the shuttle
        is then vetted uncached)."""
        if value is None or isinstance(value, (str, int, float, bool)):
            return (name, value)
        if isinstance(value, CodeModule):
            # size_bytes is a declared field independent of code_id, so
            # it goes into the token (the cargo-bound check reads it).
            entry = value.entry
            return (name, "module", value.code_id, value.size_bytes,
                    getattr(entry, "__module__", None),
                    getattr(entry, "__qualname__", None))
        if isinstance(value, KnowledgeQuantum):
            # kq ids are allocated once per constructed object and never
            # reused, so the id is a sound identity token: retransmitted
            # clones share the object, distinct quanta get fresh keys.
            # (A caller mutating a quantum's snapshots *in place* after
            # a vet would see the stale verdict — the repo never does;
            # tampering replaces directives, which changes the key.)
            return (name, "kq", value.kq_id, len(value.fact_snapshots))
        if isinstance(value, Bitstream):
            return (name, "bitstream", value.function_id, value.cells)
        if isinstance(value, Genome):
            return (name, "genome", value.genome_id)
        return None

    def _payload_key(self, shuttle: Shuttle) -> Optional[tuple]:
        """Content fingerprint of everything the structural vet reads.

        One cheap pass over the payload: per directive its op and
        argument tokens, plus the declared manifest and the lint flag.
        Directive wire size is *derived* from op and args (every sized
        carried object contributes its size through its token), so it
        needs no slot of its own.  Recomputed on every call — the memo
        trades repeated schema/quantum/manifest/lint work for one
        fingerprint pass, not for blindness to mutation.
        """
        declared = shuttle.meta.get("manifest")
        parts = [tuple(declared) if declared is not None else None,
                 self.lint_mobile_code]
        token_of = self._arg_token
        for directive in shuttle.directives:
            args = getattr(directive, "args", None)
            if not isinstance(args, dict):
                return None
            arg_tokens = []
            for arg_name in sorted(args):
                token = token_of(arg_name, args[arg_name])
                if token is None:
                    return None
                arg_tokens.append(token)
            parts.append((getattr(directive, "op", None),
                          tuple(arg_tokens)))
        return tuple(parts)

    # -- directive schemas -------------------------------------------------
    def _check_directive(self, index: int, directive) -> List[str]:
        op = getattr(directive, "op", None)
        if op not in ALL_OPS:
            return [f"{REASON_UNKNOWN_OP}: directive[{index}] op={op!r}"]
        required, optional = DIRECTIVE_SCHEMAS[op]
        problems: List[str] = []
        args = directive.args
        for name, types in sorted(required.items()):
            if name not in args:
                problems.append(
                    f"{REASON_MALFORMED_DIRECTIVE}: directive[{index}] "
                    f"{op} missing required arg {name!r}")
            elif object not in types and not isinstance(args[name], types):
                problems.append(
                    f"{REASON_MALFORMED_DIRECTIVE}: directive[{index}] "
                    f"{op} arg {name!r} has type "
                    f"{type(args[name]).__name__}")
        for name, types in sorted(optional.items()):
            if name in args and object not in types \
                    and not isinstance(args[name], types):
                problems.append(
                    f"{REASON_MALFORMED_DIRECTIVE}: directive[{index}] "
                    f"{op} arg {name!r} has type "
                    f"{type(args[name]).__name__}")
        if op == OP_DEPLOY_QUANTUM and isinstance(args.get("quantum"),
                                                  KnowledgeQuantum):
            problems.extend(self._check_quantum(index, args["quantum"]))
        return problems

    @staticmethod
    def _check_quantum(index: int, kq: KnowledgeQuantum) -> List[str]:
        problems: List[str] = []
        if not isinstance(kq.function_id, str) or not kq.function_id:
            problems.append(f"{REASON_MALFORMED_QUANTUM}: "
                            f"directive[{index}] empty function_id")
        if len(kq.fact_snapshots) > MAX_QUANTUM_FACTS \
                or kq.size_bytes > MAX_QUANTUM_BYTES:
            problems.append(
                f"{REASON_OVERSIZED_QUANTUM}: directive[{index}] "
                f"{len(kq.fact_snapshots)} facts / {kq.size_bytes}B "
                f"(caps {MAX_QUANTUM_FACTS} / {MAX_QUANTUM_BYTES}B)")
        for snap in kq.fact_snapshots:
            if not isinstance(snap, dict) \
                    or not isinstance(snap.get("fact_class"), str) \
                    or "value" not in snap \
                    or not isinstance(snap.get("weight", 1.0),
                                      (int, float)) \
                    or snap.get("weight", 1.0) < 0:
                problems.append(f"{REASON_MALFORMED_QUANTUM}: "
                                f"directive[{index}] ill-formed fact "
                                f"snapshot")
                break
        return problems

    # -- carried-code determinism lint --------------------------------------
    def _lint_code_module(self, module: CodeModule) -> Tuple[str, ...]:
        entry = module.entry
        if entry is None:
            return ()
        key = (getattr(entry, "__module__", "") or "",
               getattr(entry, "__qualname__", "") or "")
        if all(key):
            cached = self._code_verdicts.get(key)
            if cached is not None:
                return cached
        try:
            source = inspect.getsource(entry)
        except (OSError, TypeError):
            # Source unavailable (REPL, C extension): tolerated — the
            # runtime capability checks still apply.
            return ()
        try:
            findings = lint_source(source, path=module.code_id,
                                   select=MOBILE_CODE_RULES)
        except Exception:
            # Unparseable fragments (indented method sources, etc.)
            # cannot be vetted; fall back to runtime enforcement.
            findings = []
        hits = tuple(sorted({f.rule_id for f in findings}))
        if all(key):
            self._code_verdicts[key] = hits
        return hits

    # -- authorization mode --------------------------------------------------
    @staticmethod
    def _check_authorization(shuttle: Shuttle, ship) -> List[str]:
        problems: List[str] = []
        security = ship.nodeos.security
        for index, directive in enumerate(shuttle.directives):
            action = REQUIRED_ACTIONS.get(directive.op)
            if action is None:
                continue
            if not security.would_allow(shuttle.credential, action):
                problems.append(
                    f"{REASON_UNAUTHORIZED_OP}: directive[{index}] "
                    f"{directive.op} requires {action!r} which policy "
                    f"denies")
        return problems
