"""Legacy passive-IP substrate (baseline and interoperability partner)."""

from .router import LegacyRouter, build_legacy_network

__all__ = ["LegacyRouter", "build_legacy_network"]
