"""Legacy (passive) IP routers.

The non-active baseline of Table 1's left-hand columns and the
"interoperability" partner of the Multidimensional Feedback Principle
("active routers could also interoperate with legacy routers which
transparently forward datagrams in the traditional manner").

A :class:`LegacyRouter` only stores and forwards: routes are static
shortest paths recomputed when the topology version changes (a stand-in
for a converged link-state IGP), packets carrying code are treated as
opaque bytes.
"""

from __future__ import annotations

from typing import Callable, Dict, Hashable, List, Optional

from ..phys import Datagram, NetworkFabric
from ..sim import Simulator

NodeId = Hashable
DeliveryHandler = Callable[[Datagram, NodeId], None]


class LegacyRouter:
    """A passive store-and-forward router bound to one topology node."""

    def __init__(self, sim: Simulator, fabric: NetworkFabric,
                 node_id: NodeId,
                 convergence_delay: float = 0.0):
        self.sim = sim
        self.fabric = fabric
        self.node_id = node_id
        #: Seconds the router keeps using stale routes after a topology
        #: change (models IGP convergence; 0 = oracle convergence).
        self.convergence_delay = float(convergence_delay)
        self._table: Dict[NodeId, NodeId] = {}
        self._table_version = -1
        self._pending_version = -1
        self._stale_until = 0.0
        self._delivery_handlers: List[DeliveryHandler] = []
        self.forwarded = 0
        self.delivered = 0
        self.dropped_no_route = 0
        fabric.attach(node_id, self)

    # -- application hookup -------------------------------------------------
    def on_deliver(self, fn: DeliveryHandler) -> None:
        self._delivery_handlers.append(fn)

    # -- routing --------------------------------------------------------------
    def _refresh_table(self) -> None:
        topo = self.fabric.topology
        if self._table_version == topo.version:
            return
        if self._table_version >= 0 and self.convergence_delay > 0:
            # The IGP only notices the change now; it keeps forwarding on
            # stale routes until the convergence window elapses.
            if self._pending_version != topo.version:
                self._pending_version = topo.version
                self._stale_until = self.sim.now + self.convergence_delay
                return
            if self.sim.now < self._stale_until:
                return
        dist, prev = topo.shortest_paths(self.node_id)
        table: Dict[NodeId, NodeId] = {}
        for dst in dist:
            if dst == self.node_id:
                continue
            hop = dst
            while prev.get(hop) != self.node_id:
                hop = prev[hop]
                if hop == self.node_id:  # unreachable guard
                    break
            table[dst] = hop
        self._table = table
        self._table_version = topo.version

    def next_hop(self, dst: NodeId) -> Optional[NodeId]:
        self._refresh_table()
        return self._table.get(dst)

    @property
    def routing_table(self) -> Dict[NodeId, NodeId]:
        self._refresh_table()
        return dict(self._table)

    # -- data path --------------------------------------------------------
    def originate(self, packet: Datagram) -> bool:
        """Inject a locally generated packet into the network."""
        packet.created_at = self.sim.now
        return self._forward(packet)

    def receive(self, packet: Datagram, from_node: NodeId) -> None:
        if packet.dst == self.node_id or packet.is_broadcast:
            self.delivered += 1
            for fn in self._delivery_handlers:
                fn(packet, from_node)
            if not packet.is_broadcast:
                return
        if packet.dst != self.node_id and not packet.is_broadcast:
            self._forward(packet)

    def _forward(self, packet: Datagram) -> bool:
        hop = self.next_hop(packet.dst)
        if hop is None:
            self.dropped_no_route += 1
            self.sim.trace.emit("legacy.drop.noroute", node=self.node_id,
                                dst=packet.dst)
            return False
        self.forwarded += 1
        return self.fabric.send(self.node_id, hop, packet)

    def __repr__(self) -> str:
        return (f"<LegacyRouter {self.node_id} forwarded={self.forwarded} "
                f"delivered={self.delivered}>")


def build_legacy_network(sim: Simulator, fabric: NetworkFabric,
                         convergence_delay: float = 0.0
                         ) -> Dict[NodeId, LegacyRouter]:
    """Attach a LegacyRouter to every node of the fabric's topology."""
    return {node: LegacyRouter(sim, fabric, node,
                               convergence_delay=convergence_delay)
            for node in fabric.topology.nodes}
