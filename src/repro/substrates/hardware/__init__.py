"""Reconfigurable hardware substrate (the 3G-WN layer, simulated)."""

from .fabric import Bitstream, GateFabric, HardwareError, Region
from .modules import Backplane, HardwareModule, ModuleSlot

__all__ = ["Bitstream", "GateFabric", "HardwareError", "Region",
           "Backplane", "HardwareModule", "ModuleSlot"]
