"""Plug-and-play hardware modules and module slots.

These realize the paper's *netbot* landing site: "Autonomous mobile
hardware components (netbots) take care for delivering their own 'driver'
routines (mobile code) at 'docking time' on the ship."  A
:class:`ModuleSlot` is a physical socket; docking a
:class:`HardwareModule` succeeds only when its driver has been installed
into the NodeOS — the synchronization footnote 6 calls out as missing
from every 2002-era product.
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Optional

from ..nodeos import CodeKind, CodeModule
from .fabric import HardwareError

# fork-inherited id sequence: every shard replays the same
# construction order, so per-process copies advance identically
# (see shard/recovery.py)  # via: ignore[VIA013]
_module_ids = itertools.count(1)


class HardwareModule:
    """A pluggable piece of switching circuitry for one net function."""

    __slots__ = ("module_id", "function_id", "speedup", "driver",
                 "power_watts")

    def __init__(self, function_id: str, speedup: float = 16.0,
                 driver: Optional[CodeModule] = None,
                 power_watts: float = 5.0):
        if speedup < 1.0:
            raise HardwareError(f"speedup below 1.0: {speedup}")
        self.module_id = next(_module_ids)
        self.function_id = function_id
        self.speedup = float(speedup)
        # The module ships its own driver (the netbot carries it as
        # mobile code) — generated if not supplied.
        self.driver = driver or CodeModule(
            code_id=f"driver:{function_id}",
            name=f"{function_id} driver",
            size_bytes=8192,
            kind=CodeKind.DRIVER,
        )
        self.power_watts = float(power_watts)

    def __repr__(self) -> str:
        return (f"<HardwareModule #{self.module_id} {self.function_id} "
                f"x{self.speedup:.1f}>")


class ModuleSlot:
    """One physical plug-and-play socket on a ship's backplane."""

    __slots__ = ("slot_id", "module", "dock_count")

    def __init__(self, slot_id: int):
        self.slot_id = slot_id
        self.module: Optional[HardwareModule] = None
        self.dock_count = 0

    @property
    def occupied(self) -> bool:
        return self.module is not None

    def __repr__(self) -> str:
        fn = self.module.function_id if self.module else "empty"
        return f"<Slot {self.slot_id}: {fn}>"


class Backplane:
    """The bank of module slots of one ship.

    :meth:`dock` enforces driver synchronization: the NodeOS must have
    the module's driver installed *before* the circuitry goes live.
    """

    #: Mechanical/electrical insertion time in seconds.
    DOCK_SECONDS = 0.5

    def __init__(self, slots: int = 2):
        if slots < 0:
            raise HardwareError(f"negative slot count {slots}")
        self._slots: List[ModuleSlot] = [ModuleSlot(i) for i in range(slots)]
        self.docks = 0
        self.ejects = 0
        self.rejections = 0

    @property
    def slots(self) -> List[ModuleSlot]:
        return list(self._slots)

    def free_slot(self) -> Optional[ModuleSlot]:
        for slot in self._slots:
            if not slot.occupied:
                return slot
        return None

    def dock(self, module: HardwareModule, nodeos) -> ModuleSlot:
        """Insert a module.  Raises unless its driver is in the NodeOS."""
        if not nodeos.has_driver(module.driver.code_id):
            self.rejections += 1
            raise HardwareError(
                f"driver {module.driver.code_id} not installed; "
                f"dock of module #{module.module_id} rejected")
        slot = self.free_slot()
        if slot is None:
            self.rejections += 1
            raise HardwareError("no free module slot")
        slot.module = module
        slot.dock_count += 1
        self.docks += 1
        return slot

    def eject(self, slot: ModuleSlot) -> Optional[HardwareModule]:
        module, slot.module = slot.module, None
        if module is not None:
            self.ejects += 1
        return module

    def find_function(self, function_id: str) -> Optional[ModuleSlot]:
        for slot in self._slots:
            if slot.module is not None and \
                    slot.module.function_id == function_id:
                return slot
        return None

    def hardware_speedup(self, function_id: str) -> float:
        slot = self.find_function(function_id)
        return slot.module.speedup if slot is not None else 1.0

    def describe(self) -> Dict:
        return {
            "slots": len(self._slots),
            "modules": sorted(
                s.module.function_id for s in self._slots if s.occupied),
        }

    def __repr__(self) -> str:
        used = sum(1 for s in self._slots if s.occupied)
        return f"<Backplane {used}/{len(self._slots)} slots occupied>"
