"""Synthetic reconfigurable gate fabric (the 3G-WN hardware layer).

The paper's footnote 6 notes that in 2002 "there is still no commercial
product or research prototype that allows the runtime exchange of
switching circuitry (plug-and-play modules) synchronized by driver
updates in the node operation system".  This module is that missing
substrate, simulated: an FPGA-like grid of configurable cells, divided
into regions, loaded with bitstreams under a partial-reconfiguration
cost model.  Hardware-resident functions process packets at a speedup
over their software twins, but reconfiguring them is orders of magnitude
slower than rebinding an EE — the asymmetry Figure 2's tiers rely on.
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Optional

# fork-inherited id sequence: every shard replays the same
# construction order, so per-process copies advance identically
# (see shard/recovery.py)  # via: ignore[VIA013]
_region_ids = itertools.count(1)


class HardwareError(Exception):
    """Raised for invalid fabric operations."""


class Bitstream:
    """A hardware configuration for one net function.

    ``cells`` is the region size it needs; ``speedup`` is the factor by
    which the hardware implementation beats software packet processing.
    """

    __slots__ = ("function_id", "cells", "speedup", "version", "size_bytes")

    def __init__(self, function_id: str, cells: int = 512,
                 speedup: float = 8.0, version: int = 1):
        if cells <= 0:
            raise HardwareError(f"non-positive cell count {cells}")
        if speedup < 1.0:
            raise HardwareError(f"speedup below 1.0: {speedup}")
        self.function_id = function_id
        self.cells = int(cells)
        self.speedup = float(speedup)
        self.version = int(version)
        # Rule of thumb: ~12 bytes of configuration per cell.
        self.size_bytes = self.cells * 12

    def __repr__(self) -> str:
        return (f"<Bitstream {self.function_id} v{self.version} "
                f"{self.cells}cells x{self.speedup:.1f}>")


class Region:
    """A contiguous chunk of fabric cells holding at most one bitstream."""

    __slots__ = ("region_id", "cells", "bitstream", "loads", "loaded_at")

    def __init__(self, cells: int):
        self.region_id = next(_region_ids)
        self.cells = cells
        self.bitstream: Optional[Bitstream] = None
        self.loads = 0
        self.loaded_at: Optional[float] = None

    @property
    def configured(self) -> bool:
        return self.bitstream is not None

    def __repr__(self) -> str:
        fn = self.bitstream.function_id if self.bitstream else "-"
        return f"<Region #{self.region_id} {self.cells}cells fn={fn}>"


class GateFabric:
    """The reconfigurable hardware of one ship.

    Parameters
    ----------
    total_cells:
        Fabric capacity; regions are carved out of it.
    reconfig_cells_per_second:
        Partial-reconfiguration throughput.  At the default 5e3 cells/s a
        512-cell function takes ~100 ms to (re)load versus ~0.5 ms for an
        EE rebind — the 2002-era hardware tier of Figure 2 costs two-plus
        orders of magnitude more than the software tier.
    """

    def __init__(self, total_cells: int = 8192,
                 reconfig_cells_per_second: float = 5e3):
        if total_cells <= 0:
            raise HardwareError(f"non-positive fabric size {total_cells}")
        if reconfig_cells_per_second <= 0:
            raise HardwareError("non-positive reconfiguration rate")
        self.total_cells = int(total_cells)
        self.reconfig_rate = float(reconfig_cells_per_second)
        self._regions: Dict[int, Region] = {}
        self.cells_used = 0
        self.total_loads = 0
        self.total_reconfig_time = 0.0

    # -- region management --------------------------------------------------
    def allocate_region(self, cells: int) -> Region:
        if cells <= 0:
            raise HardwareError(f"non-positive region size {cells}")
        if self.cells_used + cells > self.total_cells:
            raise HardwareError(
                f"fabric full: need {cells}, free "
                f"{self.total_cells - self.cells_used}")
        region = Region(cells)
        self._regions[region.region_id] = region
        self.cells_used += cells
        return region

    def free_region(self, region: Region) -> None:
        if region.region_id not in self._regions:
            raise HardwareError(f"unknown region {region.region_id}")
        del self._regions[region.region_id]
        self.cells_used -= region.cells

    @property
    def regions(self) -> List[Region]:
        return list(self._regions.values())

    @property
    def free_cells(self) -> int:
        return self.total_cells - self.cells_used

    # -- (re)configuration ---------------------------------------------------
    def load(self, region: Region, bitstream: Bitstream,
             now: float = 0.0) -> float:
        """Load a bitstream into a region; returns reconfiguration delay."""
        if region.region_id not in self._regions:
            raise HardwareError(f"unknown region {region.region_id}")
        if bitstream.cells > region.cells:
            raise HardwareError(
                f"{bitstream.function_id} needs {bitstream.cells} cells, "
                f"region has {region.cells}")
        delay = bitstream.cells / self.reconfig_rate
        region.bitstream = bitstream
        region.loads += 1
        region.loaded_at = now
        self.total_loads += 1
        self.total_reconfig_time += delay
        return delay

    def unload(self, region: Region) -> Optional[Bitstream]:
        bs, region.bitstream = region.bitstream, None
        return bs

    def find_function(self, function_id: str) -> Optional[Region]:
        for region in self._regions.values():
            if (region.bitstream is not None
                    and region.bitstream.function_id == function_id):
                return region
        return None

    def hardware_speedup(self, function_id: str) -> float:
        """Speedup factor if the function is in hardware, else 1.0."""
        region = self.find_function(function_id)
        if region is None:
            return 1.0
        return region.bitstream.speedup

    def describe(self) -> Dict:
        return {
            "total_cells": self.total_cells,
            "cells_used": self.cells_used,
            "functions": sorted(
                r.bitstream.function_id for r in self._regions.values()
                if r.bitstream is not None),
        }

    def __repr__(self) -> str:
        return (f"<GateFabric {self.cells_used}/{self.total_cells}cells "
                f"regions={len(self._regions)} loads={self.total_loads}>")
