"""Generator-coroutine processes on top of the event kernel.

A process is a Python generator driven by the kernel.  It may yield:

* :class:`~repro.substrates.sim.events.Timeout` — sleep;
* :class:`~repro.substrates.sim.events.Signal` — wait for a trigger;
* :class:`~repro.substrates.sim.events.Event` — wait for a bare event;
* another :class:`Process` — join (wait for it to finish);
* ``None`` — yield the floor for one zero-delay step (lets simultaneous
  events interleave deterministically).

The value sent back into the generator is the timeout value, the signal's
trigger value, the event's ``value``, or the joined process's return
value, respectively.
"""

from __future__ import annotations

from typing import Any, Generator, List, Optional

from .errors import CancelledError, InterruptError, SimulationError
from .events import Event, Signal, Timeout
from .kernel import Simulator

ProcessGen = Generator[Any, Any, Any]


class Process:
    """A running simulation process.

    Do not instantiate directly — use :func:`spawn`.
    """

    __slots__ = ("sim", "gen", "name", "_done", "_result", "_error",
                 "_waiters", "_pending_event", "_waiting_signal",
                 "_interrupt", "started_at", "finished_at")

    def __init__(self, sim: Simulator, gen: ProcessGen, name: str):
        self.sim = sim
        self.gen = gen
        self.name = name
        self._done = False
        self._result: Any = None
        self._error: Optional[BaseException] = None
        self._waiters: List["Process"] = []
        self._pending_event: Optional[Event] = None
        self._waiting_signal: Optional[Signal] = None
        self._interrupt: Optional[InterruptError] = None
        self.started_at = sim.now
        self.finished_at: Optional[float] = None

    # -- state ------------------------------------------------------------
    @property
    def done(self) -> bool:
        return self._done

    @property
    def result(self) -> Any:
        if not self._done:
            raise SimulationError(f"process {self.name} not finished")
        if self._error is not None:
            raise self._error
        return self._result

    @property
    def failed(self) -> bool:
        return self._done and self._error is not None

    # -- control ----------------------------------------------------------
    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`InterruptError` into the process at its wait."""
        if self._done:
            return
        self._interrupt = InterruptError(cause)
        self._detach()
        # Deliver on the agenda so interrupts are ordered like other events.
        self.sim.call_in(0.0, self._deliver_interrupt, name=f"intr:{self.name}")

    def cancel(self) -> None:
        """Stop the process where it waits (raises CancelledError inside)."""
        if self._done:
            return
        self._detach()
        try:
            self.gen.throw(CancelledError())
        except (StopIteration, CancelledError):
            pass
        except InterruptError:
            pass
        self._finish(None, None)

    def _detach(self) -> None:
        if self._pending_event is not None:
            self._pending_event.cancel()
            self._pending_event = None
        if self._waiting_signal is not None:
            self._waiting_signal._unregister(self)
            self._waiting_signal = None

    def _deliver_interrupt(self) -> None:
        if self._done or self._interrupt is None:
            return
        exc, self._interrupt = self._interrupt, None
        self._step_throw(exc)

    # -- engine -----------------------------------------------------------
    def _start(self) -> None:
        self.sim.call_in(0.0, self._step_send, None, name=f"start:{self.name}")

    def _wake(self, value: Any) -> None:
        """Called by a Signal trigger."""
        self._waiting_signal = None
        self.sim.call_in(0.0, self._step_send, value, name=f"wake:{self.name}")

    def _step_send(self, value: Any) -> None:
        if self._done:
            return
        try:
            yielded = self.gen.send(value)
        except StopIteration as stop:
            self._finish(getattr(stop, "value", None), None)
            return
        except BaseException as exc:  # noqa: BLE001 — process bodies may raise anything
            self._finish(None, exc)
            return
        self._handle_yield(yielded)

    def _step_throw(self, exc: BaseException) -> None:
        if self._done:
            return
        try:
            yielded = self.gen.throw(exc)
        except StopIteration as stop:
            self._finish(getattr(stop, "value", None), None)
            return
        except BaseException as err:  # noqa: BLE001
            self._finish(None, err)
            return
        self._handle_yield(yielded)

    def _handle_yield(self, yielded: Any) -> None:
        if yielded is None:
            yielded = Timeout(0.0)
        if isinstance(yielded, Timeout):
            ev = self.sim.schedule(yielded.delay, name=f"sleep:{self.name}")
            value = yielded.value
            ev.add_callback(lambda _ev: self._resume_from_event(value))
            self._pending_event = ev
        elif isinstance(yielded, Signal):
            self._waiting_signal = yielded
            yielded._register(self)
        elif isinstance(yielded, Event):
            if yielded.fired:
                self.sim.call_in(0.0, self._step_send, yielded.value,
                                 name=f"resume:{self.name}")
            else:
                self._pending_event = yielded
                yielded.add_callback(
                    lambda ev: self._resume_from_event(ev.value))
        elif isinstance(yielded, Process):
            other = yielded
            if other._done:
                self.sim.call_in(0.0, self._resume_join, other,
                                 name=f"join:{self.name}")
            else:
                other._waiters.append(self)
        else:
            self._finish(None, SimulationError(
                f"process {self.name} yielded unsupported {yielded!r}"))

    def _resume_from_event(self, value: Any) -> None:
        self._pending_event = None
        self._step_send(value)

    def _resume_join(self, other: "Process") -> None:
        if other._error is not None:
            self._step_throw(other._error)
        else:
            self._step_send(other._result)

    def _finish(self, result: Any, error: Optional[BaseException]) -> None:
        self._done = True
        self._result = result
        self._error = error
        self.finished_at = self.sim.now
        waiters, self._waiters = self._waiters, []
        for waiter in waiters:
            self.sim.call_in(0.0, waiter._resume_join, self,
                             name=f"join:{waiter.name}")
        if error is not None and not waiters:
            raise error

    def __repr__(self) -> str:
        state = "done" if self._done else "running"
        return f"<Process {self.name} {state}>"


def spawn(sim: Simulator, gen: ProcessGen, name: Optional[str] = None) -> Process:
    """Start a generator as a simulation process."""
    if name is None:
        name = getattr(gen, "__name__", "proc")
    proc = Process(sim, gen, name)
    proc._start()
    return proc


def wait_all(sim: Simulator, processes) -> Process:
    """A process that finishes when *all* given processes have finished.

    Its result is the list of their results, in input order.  Usage:
    ``results = yield wait_all(sim, [p1, p2, p3])``.
    """
    procs = list(processes)

    def waiter():
        results = []
        for proc in procs:
            results.append((yield proc))
        return results

    return spawn(sim, waiter(), name="wait-all")


def wait_any(sim: Simulator, processes) -> Process:
    """A process that finishes when *any* given process finishes.

    Its result is ``(index, result)`` of the first finisher (ties break
    by input order).  The others keep running.
    """
    procs = list(processes)

    def waiter():
        done = Signal("wait-any")
        for i, proc in enumerate(procs):
            if proc.done:
                return (i, proc.result)

            def notify(ev=None, i=i, proc=proc):
                if not done.trigger_count:
                    done.trigger((i, proc._result))

            proc._waiters.append(_CallbackWaiter(sim, notify))
        return (yield done)

    return spawn(sim, waiter(), name="wait-any")


class _CallbackWaiter:
    """Adapter letting a plain callback sit in a Process waiter list."""

    __slots__ = ("sim", "fn", "name")

    def __init__(self, sim: Simulator, fn):
        self.sim = sim
        self.fn = fn
        self.name = "callback-waiter"

    def _resume_join(self, other: "Process") -> None:
        self.fn()
