"""Named, reproducible random-number streams.

Every stochastic component of the simulation draws from its own named
stream so that adding a new component never perturbs the draws of an
existing one (stream independence), and the whole run is a pure function
of the master seed.
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict

import numpy as np


def derive_seed(master: int, name: str) -> int:
    """Deterministically derive a 64-bit child seed from (master, name)."""
    digest = hashlib.sha256(f"{master}:{name}".encode()).digest()
    return int.from_bytes(digest[:8], "little")


class RngRegistry:
    """A factory of independent, named random streams.

    ``stream(name)`` returns a :class:`random.Random`; ``np_stream(name)``
    returns a :class:`numpy.random.Generator`.  Both are cached, so
    repeated lookups return the same live stream.
    """

    def __init__(self, master_seed: int = 0):
        self.master_seed = int(master_seed)
        self._py: Dict[str, random.Random] = {}
        self._np: Dict[str, np.random.Generator] = {}

    def stream(self, name: str) -> random.Random:
        rng = self._py.get(name)
        if rng is None:
            rng = random.Random(derive_seed(self.master_seed, name))
            self._py[name] = rng
        return rng

    def np_stream(self, name: str) -> np.random.Generator:
        rng = self._np.get(name)
        if rng is None:
            rng = np.random.default_rng(derive_seed(self.master_seed, name))
            self._np[name] = rng
        return rng

    def fork(self, name: str) -> "RngRegistry":
        """A child registry whose streams are independent of the parent's."""
        return RngRegistry(derive_seed(self.master_seed, f"fork:{name}"))

    def __repr__(self) -> str:
        return (f"<RngRegistry seed={self.master_seed} "
                f"streams={len(self._py) + len(self._np)}>")
