"""Named, reproducible random-number streams.

Every stochastic component of the simulation draws from its own named
stream so that adding a new component never perturbs the draws of an
existing one (stream independence), and the whole run is a pure function
of the master seed.

The module also hosts the determinism sanitizer's draw hook
(``repro sanitize``): when a tape is installed via :func:`install_tape`,
newly created streams are :class:`_TapeRandom` instances that report
every core draw (``random()`` / ``getrandbits()`` — the two primitives
every public ``random.Random`` method funnels through) to the tape.
With no tape installed the hook is a single ``None`` check at stream
creation; draw values are never altered by recording, so a taped run's
digest is byte-identical to an untaped one.
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict, Optional

import numpy as np


def derive_seed(master: int, name: str) -> int:
    """Deterministically derive a 64-bit child seed from (master, name)."""
    digest = hashlib.sha256(f"{master}:{name}".encode()).digest()
    return int.from_bytes(digest[:8], "little")


# ----------------------------------------------------------------------
# sanitizer draw hook
# ----------------------------------------------------------------------

# single-process sanitizer hook: installed only around `repro sanitize`
# runs, read-only everywhere else, never active inside shard workers
# via: ignore[VIA013]
_ACTIVE_TAPE = None


def install_tape(tape) -> None:
    """Activate a draw tape (see :mod:`repro.sanitize`)."""
    global _ACTIVE_TAPE  # via: ignore[VIA013] see declaration above
    _ACTIVE_TAPE = tape


def clear_tape() -> None:
    """Deactivate the draw tape."""
    global _ACTIVE_TAPE  # via: ignore[VIA013] see declaration above
    _ACTIVE_TAPE = None


def active_tape():
    """The installed draw tape, or None (read by the digest path too)."""
    return _ACTIVE_TAPE


class _TapeRandom(random.Random):
    """A stream that reports its core draws to the active tape.

    State evolution is exactly :class:`random.Random`'s — recording
    observes values without changing them — except when the tape's
    *injection* matches a draw, in which case the perturbed value is
    both returned and recorded (that is how ``repro sanitize --inject``
    plants a reproducible divergence to localize).
    """

    def __init__(self, seed: int, name: str, registry: "RngRegistry"):
        super().__init__(seed)
        self._via_stream = name
        self._via_registry = registry

    def random(self) -> float:
        value = super().random()
        tape = _ACTIVE_TAPE
        if tape is not None:
            value = tape.record(self._via_stream, "random", value,
                                self._via_registry)
        return value

    def getrandbits(self, k: int) -> int:
        value = super().getrandbits(k)
        tape = _ACTIVE_TAPE
        if tape is not None:
            value = tape.record(self._via_stream, "getrandbits", value,
                                self._via_registry)
        return value


class RngRegistry:
    """A factory of independent, named random streams.

    ``stream(name)`` returns a :class:`random.Random`; ``np_stream(name)``
    returns a :class:`numpy.random.Generator`.  Both are cached, so
    repeated lookups return the same live stream.

    ``clock`` is set by the owning :class:`Simulator` so the sanitizer
    tape can stamp draws with simulated time; it is never read on the
    normal path.
    """

    def __init__(self, master_seed: int = 0):
        self.master_seed = int(master_seed)
        self._py: Dict[str, random.Random] = {}
        self._np: Dict[str, np.random.Generator] = {}
        self.clock = None

    def stream(self, name: str) -> random.Random:
        rng = self._py.get(name)
        if rng is None:
            seed = derive_seed(self.master_seed, name)
            if _ACTIVE_TAPE is not None:
                rng = _TapeRandom(seed, name, self)
            else:
                # seed derived just above; this *is* the derivation site
                # via: ignore[VIA015]
                rng = random.Random(seed)
            self._py[name] = rng
        return rng

    def np_stream(self, name: str) -> np.random.Generator:
        # numpy draws happen inside the C generator and cannot be taped
        # per-draw; the sanitizer still sees their downstream effects
        # through the digest/merge tape.
        rng = self._np.get(name)
        if rng is None:
            rng = np.random.default_rng(derive_seed(self.master_seed, name))
            self._np[name] = rng
        return rng

    def fork(self, name: str) -> "RngRegistry":
        """A child registry whose streams are independent of the parent's."""
        return RngRegistry(derive_seed(self.master_seed, f"fork:{name}"))

    def sim_now(self) -> Optional[float]:
        """The owning simulator's clock reading, when wired."""
        clock = self.clock
        return None if clock is None else clock.now

    def __repr__(self) -> str:
        return (f"<RngRegistry seed={self.master_seed} "
                f"streams={len(self._py) + len(self._np)}>")
