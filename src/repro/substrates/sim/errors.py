"""Exception types for the discrete-event simulation kernel."""


class SimulationError(Exception):
    """Base class for all kernel-level errors."""


class SchedulingError(SimulationError):
    """Raised when an event is scheduled in the past or after shutdown."""


class CancelledError(SimulationError):
    """Raised inside a process whose pending wait was cancelled."""


class DeadlockError(SimulationError):
    """Raised when ``run(until=None)`` exhausts events while processes wait."""


class InterruptError(SimulationError):
    """Raised inside a process that another process interrupted.

    The interrupt payload (``cause``) is attached so the interrupted
    process can decide how to react.
    """

    def __init__(self, cause=None):
        super().__init__(f"process interrupted (cause={cause!r})")
        self.cause = cause
