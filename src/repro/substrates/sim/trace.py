"""Trace / metrics bus.

A lightweight publish-subscribe channel carried by the simulator.  Any
component may ``emit(topic, **fields)``; analysis code subscribes by topic
prefix.  Records are cheap tuples so tracing a long run stays fast; when
no subscriber matches a topic the emit is a dictionary miss and two string
operations.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Any, Callable, Dict, List, NamedTuple, Optional


class TraceRecord(NamedTuple):
    time: float
    topic: str
    fields: Dict[str, Any]


Subscriber = Callable[[TraceRecord], None]


class TraceBus:
    """Topic-based pub/sub attached to a :class:`Simulator`.

    Topics are dot-separated (e.g. ``"ship.role.change"``).  A subscriber
    registered for ``"ship"`` receives every topic starting with
    ``"ship."`` as well as ``"ship"`` itself.
    """

    def __init__(self, sim):
        self._sim = sim
        self._subs: Dict[str, List[Subscriber]] = defaultdict(list)
        self._record_all: Optional[List[TraceRecord]] = None
        self.emitted = 0
        #: Exceptions swallowed from subscribers (a broken analysis
        #: callback must never abort the emitting simulation step).
        self.subscriber_errors = 0
        self.last_error: Optional[BaseException] = None

    # -- subscription -----------------------------------------------------
    def subscribe(self, prefix: str, fn: Subscriber) -> Subscriber:
        self._subs[prefix].append(fn)
        return fn

    def unsubscribe(self, prefix: str, fn: Subscriber) -> None:
        subs = self._subs.get(prefix)
        if subs is None:
            return
        try:
            subs.remove(fn)
        except ValueError:
            pass
        if not subs:
            # Prune: an empty list would still cost the prefix walk a
            # truthiness check per emit, and `if not self._subs` relies
            # on dead prefixes disappearing.
            del self._subs[prefix]

    def record_all(self) -> List[TraceRecord]:
        """Start recording every emit; returns the live record list."""
        if self._record_all is None:
            self._record_all = []
        return self._record_all

    # -- emission ---------------------------------------------------------
    def emit(self, topic: str, **fields: Any) -> None:
        self.emitted += 1
        obs = getattr(self._sim, "obs", None)
        if obs is not None and obs.on:
            obs.record_topic(topic)
        rec: Optional[TraceRecord] = None
        if self._record_all is not None:
            rec = TraceRecord(self._sim.now, topic, fields)
            self._record_all.append(rec)
        if not self._subs:
            return
        # Walk the prefix chain: "a.b.c" notifies "a.b.c", "a.b", "a".
        part = topic
        while True:
            subs = self._subs.get(part)
            if subs:
                if rec is None:
                    rec = TraceRecord(self._sim.now, topic, fields)
                for fn in list(subs):
                    try:
                        fn(rec)
                    except Exception as exc:
                        self.subscriber_errors += 1
                        self.last_error = exc
            cut = part.rfind(".")
            if cut < 0:
                break
            part = part[:cut]

    def counter(self, prefix: str) -> "TraceCounter":
        """Convenience: a counter subscribed to ``prefix``."""
        counter = TraceCounter()
        self.subscribe(prefix, counter)
        return counter


class TraceCounter:
    """Counts records per full topic; callable as a subscriber."""

    def __init__(self):
        self.counts: Dict[str, int] = defaultdict(int)
        self.total = 0

    def __call__(self, rec: TraceRecord) -> None:
        self.counts[rec.topic] += 1
        self.total += 1

    def __getitem__(self, topic: str) -> int:
        return self.counts.get(topic, 0)
