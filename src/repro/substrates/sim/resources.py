"""Shared-resource primitives for simulation processes.

These model contention inside a ship / node: CPU slots on an execution
environment, memory pools for the knowledge base, and token buckets for
link bandwidth shaping.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, List, Optional, Tuple

from .errors import SimulationError
from .events import Event, Signal
from .kernel import Simulator


class Resource:
    """A counted resource with FIFO queuing (like ``simpy.Resource``).

    Usage from a process::

        grant = resource.request()
        yield grant          # waits until capacity is available
        try:
            ...              # hold the resource
        finally:
            resource.release()
    """

    def __init__(self, sim: Simulator, capacity: int = 1, name: str = "res"):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.sim = sim
        self.capacity = capacity
        self.name = name
        self.in_use = 0
        self._queue: Deque[Tuple[Event, float]] = deque()
        self.total_grants = 0
        self.total_wait_time = 0.0

    def request(self) -> Event:
        """Returns an event that fires once the resource is granted."""
        grant = Event(self.sim.now, name=f"grant:{self.name}")
        if self.in_use < self.capacity and not self._queue:
            self.in_use += 1
            self.total_grants += 1
            self.sim.call_in(0.0, grant.fire, name=f"grant:{self.name}")
        else:
            self._queue.append((grant, self.sim.now))
        return grant

    def release(self) -> None:
        if self.in_use <= 0:
            raise SimulationError(f"release of idle resource {self.name}")
        self.in_use -= 1
        while self._queue and self.in_use < self.capacity:
            grant, requested_at = self._queue.popleft()
            if grant.cancelled:
                continue
            self.in_use += 1
            self.total_grants += 1
            self.total_wait_time += self.sim.now - requested_at
            self.sim.call_in(0.0, grant.fire, name=f"grant:{self.name}")
            break

    @property
    def queue_length(self) -> int:
        return sum(1 for g, _ in self._queue if not g.cancelled)

    def __repr__(self) -> str:
        return (f"<Resource {self.name} {self.in_use}/{self.capacity} "
                f"queued={self.queue_length}>")


class Store:
    """An unbounded (or bounded) FIFO store of items with blocking get.

    ``put(item)`` never blocks unless a ``capacity`` is given, in which
    case it raises :class:`StoreFull` (callers model drops explicitly —
    networks drop packets rather than backpressure the wire).
    """

    def __init__(self, sim: Simulator, capacity: Optional[int] = None,
                 name: str = "store"):
        self.sim = sim
        self.capacity = capacity
        self.name = name
        self._items: Deque[Any] = deque()
        self._getters: Deque[Event] = deque()
        self.total_puts = 0
        self.total_drops = 0

    def put(self, item: Any) -> bool:
        """Add an item; returns False (and counts a drop) when full."""
        if self.capacity is not None and len(self._items) >= self.capacity:
            self.total_drops += 1
            return False
        self.total_puts += 1
        while self._getters:
            getter = self._getters.popleft()
            if getter.cancelled:
                continue
            getter.value = item
            self.sim.call_in(0.0, getter.fire, name=f"get:{self.name}")
            return True
        self._items.append(item)
        return True

    def get(self) -> Event:
        """Returns an event whose value is the next item (FIFO)."""
        ev = Event(self.sim.now, name=f"get:{self.name}")
        if self._items:
            ev.value = self._items.popleft()
            self.sim.call_in(0.0, ev.fire, name=f"get:{self.name}")
        else:
            self._getters.append(ev)
        return ev

    def try_get(self) -> Tuple[bool, Any]:
        """Non-blocking get: ``(True, item)`` or ``(False, None)``."""
        if self._items:
            return True, self._items.popleft()
        return False, None

    def __len__(self) -> int:
        return len(self._items)

    def __repr__(self) -> str:
        return f"<Store {self.name} items={len(self._items)}>"


class TokenBucket:
    """A token-bucket rate limiter used for link bandwidth shaping.

    Tokens accrue at ``rate`` per second up to ``burst``.  ``consume(n)``
    returns the delay until ``n`` tokens are available (0.0 when they
    already are) and debits them; the caller schedules accordingly.
    """

    def __init__(self, sim: Simulator, rate: float, burst: float,
                 name: str = "bucket"):
        if rate <= 0:
            raise ValueError(f"rate must be positive, got {rate}")
        self.sim = sim
        self.rate = float(rate)
        self.burst = float(burst)
        self.name = name
        self._tokens = float(burst)
        self._last = sim.now

    def _refill(self) -> None:
        now = self.sim.now
        self._tokens = min(self.burst,
                           self._tokens + (now - self._last) * self.rate)
        self._last = now

    @property
    def tokens(self) -> float:
        self._refill()
        return self._tokens

    def consume(self, amount: float) -> float:
        """Debit ``amount`` tokens; return the wait until they exist.

        The bucket may go negative, which serializes subsequent senders —
        exactly the behaviour of a FIFO transmission queue.
        """
        self._refill()
        self._tokens -= amount
        if self._tokens >= 0:
            return 0.0
        return -self._tokens / self.rate

    def __repr__(self) -> str:
        return f"<TokenBucket {self.name} tokens={self.tokens:.3g}>"


class WaitQueue:
    """A named set of signals keyed by arbitrary hashable keys.

    Lets a process wait for "event about key K" without pre-creating
    every signal (used for route discovery replies, code-fetch replies).
    """

    def __init__(self, name: str = "waitq"):
        self.name = name
        self._signals: dict = {}

    def signal_for(self, key: Any) -> Signal:
        sig = self._signals.get(key)
        if sig is None:
            sig = Signal(f"{self.name}:{key}")
            self._signals[key] = sig
        return sig

    def trigger(self, key: Any, value: Any = None) -> int:
        sig = self._signals.pop(key, None)
        if sig is None:
            return 0
        return sig.trigger(value)

    def pending(self) -> List[Any]:
        return [k for k, s in self._signals.items() if s.waiting]
