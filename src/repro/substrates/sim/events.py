"""Event primitives for the discrete-event kernel.

An :class:`Event` is a one-shot occurrence at a simulated time.  Events are
totally ordered by ``(time, priority, seq)`` so that simultaneous events
fire in a deterministic order — determinism is a hard requirement for the
reproduction experiments (every run must be bit-for-bit repeatable given a
seed).
"""

from __future__ import annotations

import itertools
from typing import Any, Callable, List, Optional

#: Default event priority.  Lower fires first among simultaneous events.
NORMAL = 0
#: Priority for housekeeping that must precede normal events (e.g. link-state
#: recomputation before packet delivery at the same instant).
URGENT = -10
#: Priority for observers that must see the state *after* normal events.
LAZY = 10

# fork-inherited id sequence: every shard replays the same
# construction order, so per-process copies advance identically
# (see shard/recovery.py)  # via: ignore[VIA013]
_seq = itertools.count()


class Event:
    """A schedulable one-shot occurrence.

    Callbacks attached via :meth:`add_callback` run, in attachment order,
    when the event fires.  An event may be cancelled before it fires, in
    which case callbacks never run.
    """

    __slots__ = ("time", "priority", "seq", "callbacks", "value",
                 "_fired", "_cancelled", "name", "_fn", "_args")

    def __init__(self, time: float, priority: int = NORMAL,
                 name: Optional[str] = None):
        self.time = float(time)
        self.priority = int(priority)
        self.seq = next(_seq)
        self.callbacks: List[Callable[["Event"], None]] = []
        self.value: Any = None
        self._fired = False
        self._cancelled = False
        self.name = name
        # Direct-call fast path used by Simulator.call_at/call_in: the
        # (fn, args) pair fires before the callbacks list, in exactly
        # the position the old ``lambda _ev: fn(*args)`` first callback
        # occupied, without the closure allocation.
        self._fn: Optional[Callable[..., Any]] = None
        self._args: tuple = ()

    # -- pooling ----------------------------------------------------------
    def _reuse(self, time: float, priority: int,
               name: Optional[str]) -> "Event":
        """Re-initialize a recycled instance (``perf.switches.
        object_pool``).  Mirrors ``__init__`` exactly — including the
        ``_seq`` draw, so id consumption is identical to a fresh
        construction — except ``callbacks`` keeps its (cleared) list,
        saving the allocation."""
        self.time = float(time)
        self.priority = int(priority)
        self.seq = next(_seq)
        self.value = None
        self._fired = False
        self._cancelled = False
        self.name = name
        return self

    def _recycle(self) -> "Event":
        """Scrub before parking on the free list: drop everything that
        could pin an object graph."""
        self.callbacks.clear()
        self.value = None
        self.name = None
        self._fn = None
        self._args = ()
        return self

    # -- ordering ---------------------------------------------------------
    def sort_key(self):
        return (self.time, self.priority, self.seq)

    def __lt__(self, other: "Event") -> bool:
        return self.sort_key() < other.sort_key()

    # -- lifecycle --------------------------------------------------------
    @property
    def fired(self) -> bool:
        return self._fired

    @property
    def cancelled(self) -> bool:
        return self._cancelled

    @property
    def pending(self) -> bool:
        return not (self._fired or self._cancelled)

    def add_callback(self, fn: Callable[["Event"], None]) -> None:
        if self._fired:
            raise RuntimeError(f"event {self!r} already fired")
        self.callbacks.append(fn)

    def cancel(self) -> bool:
        """Cancel the event.  Returns True if it was still pending."""
        if self.pending:
            self._cancelled = True
            return True
        return False

    def fire(self) -> None:
        """Run callbacks.  Called by the kernel only."""
        if self._cancelled:
            return
        if self._fired:
            raise RuntimeError(f"event {self!r} fired twice")
        self._fired = True
        fn = self._fn
        if fn is not None:
            fn(*self._args)
        for fn in self.callbacks:
            fn(self)

    def __repr__(self) -> str:
        label = self.name or "event"
        state = ("cancelled" if self._cancelled
                 else "fired" if self._fired else "pending")
        return f"<{label} t={self.time:.6g} {state}>"


class Timeout:
    """Yielded by a process to sleep for ``delay`` simulated seconds."""

    __slots__ = ("delay", "value")

    def __init__(self, delay: float, value: Any = None):
        if delay < 0:
            raise ValueError(f"negative timeout: {delay}")
        self.delay = float(delay)
        self.value = value

    def __repr__(self) -> str:
        return f"Timeout({self.delay:.6g})"


class Signal:
    """A broadcast condition processes can wait on.

    ``wait()`` is yielded from a process; ``trigger(value)`` wakes every
    waiter with that value.  Signals are reusable (each trigger wakes the
    waiters registered since the previous trigger).
    """

    __slots__ = ("name", "_waiters", "trigger_count", "last_value")

    def __init__(self, name: str = "signal"):
        self.name = name
        self._waiters: List[Any] = []  # list[Process]
        self.trigger_count = 0
        self.last_value: Any = None

    @property
    def waiting(self) -> int:
        return len(self._waiters)

    def _register(self, process) -> None:
        self._waiters.append(process)

    def _unregister(self, process) -> None:
        try:
            self._waiters.remove(process)
        except ValueError:
            pass

    def trigger(self, value: Any = None) -> int:
        """Wake all current waiters; returns how many were woken."""
        self.trigger_count += 1
        self.last_value = value
        waiters, self._waiters = self._waiters, []
        for proc in waiters:
            proc._wake(value)
        return len(waiters)

    def __repr__(self) -> str:
        return f"<Signal {self.name} waiting={self.waiting}>"
