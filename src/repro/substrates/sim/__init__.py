"""Discrete-event simulation kernel (substrate).

The Wandering Network of the Viator paper is a *concept*; this kernel is
the deterministic clockwork everything else in the reproduction runs on.
"""

from .errors import (CancelledError, DeadlockError, InterruptError,
                     SchedulingError, SimulationError)
from .events import LAZY, NORMAL, URGENT, Event, Signal, Timeout
from .kernel import PeriodicTask, Simulator
from .process import Process, spawn, wait_all, wait_any
from .resources import Resource, Store, TokenBucket, WaitQueue
from .rng import RngRegistry, derive_seed
from .trace import TraceBus, TraceCounter, TraceRecord

__all__ = [
    "CancelledError", "DeadlockError", "InterruptError", "SchedulingError",
    "SimulationError", "Event", "Signal", "Timeout", "NORMAL", "URGENT",
    "LAZY", "Simulator", "PeriodicTask", "Process", "spawn",
    "wait_all", "wait_any", "Resource",
    "Store", "TokenBucket", "WaitQueue", "RngRegistry", "derive_seed",
    "TraceBus", "TraceCounter", "TraceRecord",
]
