"""Pluggable agenda structures for the discrete-event kernel.

The :class:`~repro.substrates.sim.kernel.Simulator` used to own its
binary heap directly; this module factors the pending-event store out
behind a small common surface so alternative structures can be proven
digest-identical through the bench ``compare()`` oracle and then
switched on per run (``perf.switches.agenda_calendar``).

Two implementations
-------------------
:class:`HeapAgenda`
    The reference structure — ``heapq`` over ``(time, priority, seq,
    event)`` tuples.  Storing tuples instead of :class:`Event` objects
    moves every ordering comparison from a Python ``__lt__`` call (which
    builds two key tuples per probe) into C tuple comparison; the heap
    order is unchanged because ``seq`` is unique, so the tuple prefix
    ``(time, priority, seq)`` is already a total order.

:class:`CalendarAgenda`
    A calendar queue (Brown 1988): a power-of-two array of sorted
    buckets indexed by ``int(time / width)``.  Insertion is a
    ``bisect.insort`` into one short bucket; the minimum is found by
    scanning buckets from the last-popped position.  Same-time events
    always share ``int(time / width)`` and therefore a bucket, so tie
    order — and every run digest — is identical to the heap's.

Ordering/parity contract (shared by both)
-----------------------------------------
* Entries leave in exact ``(time, priority, seq)`` order.
* ``__len__`` counts *every* stored entry, pending or lazily
  cancelled — ``peak_agenda_depth`` is digest-visible, so both
  structures must agree on the count at every push point.
* Dead (fired/cancelled) entries are discarded only when they reach the
  global-minimum position (the heap's lazy-cancellation boundary); a
  calendar must not purge opportunistically elsewhere, or ``len()``
  would drift from the reference at some push point.

Minimum-search invariant (calendar): bucket ``k`` only holds entries
whose ``int(time / width) % nbuckets == k``, and the scan from the
last-popped epoch checks candidate heads with the *same* integer
division used at insert — never reconstructed float window bounds — so
a boundary-ulp disagreement between placement and search cannot pop
out of order.
"""

from __future__ import annotations

import heapq
from bisect import bisect_right, insort
from typing import Dict, List, Optional, Tuple

from .events import Event

#: Agenda entry: ``(time, priority, seq, event)``.  The 3-field prefix
#: is the kernel's total event order; the tuple compare never reaches
#: the Event (``seq`` is unique).
Entry = Tuple[float, int, int, Event]

_INF = float("inf")


# ----------------------------------------------------------------------
# process-wide diagnostics
# ----------------------------------------------------------------------

# Process-wide agenda-operation tally, folded in by Simulator.run() on
# exit and read by the bench harness / obs export.  Diagnostics only:
# never consulted by simulation logic, never part of any digest.  Shard
# workers fork-inherit a copy and advance it independently; only the
# coordinator's copy is ever reported.
# via: ignore[VIA013]
_TALLY: Dict[str, int] = {
    "inserts": 0, "pops": 0, "purges": 0, "max_batch": 0,
}


def tally_snapshot(reset_max: bool = False) -> Dict[str, int]:
    """Copy the process tally; optionally re-arm the ``max_batch`` high
    -water mark so the next :func:`tally_delta` reports a window max."""
    snap = dict(_TALLY)
    if reset_max:
        _TALLY["max_batch"] = 0
    return snap


def tally_delta(snapshot: Dict[str, int]) -> Dict[str, int]:
    """Tally movement since ``snapshot`` (counters subtracted,
    ``max_batch`` reported as the current high-water mark)."""
    return {
        "inserts": _TALLY["inserts"] - snapshot["inserts"],
        "pops": _TALLY["pops"] - snapshot["pops"],
        "purges": _TALLY["purges"] - snapshot["purges"],
        "max_batch": _TALLY["max_batch"],
    }


def tally_absorb(agenda: "HeapAgenda | CalendarAgenda", mark: List[int],
                 max_batch: int) -> None:
    """Fold one simulator's agenda counters into the process tally.

    ``mark`` is the simulator-owned ``[inserts, pops, purges]`` list of
    values already folded — repeated ``run()`` calls on one simulator
    contribute only their delta.
    """
    _TALLY["inserts"] += agenda.inserts - mark[0]
    _TALLY["pops"] += agenda.pops - mark[1]
    _TALLY["purges"] += agenda.purges - mark[2]
    if max_batch > _TALLY["max_batch"]:
        _TALLY["max_batch"] = max_batch
    mark[0] = agenda.inserts
    mark[1] = agenda.pops
    mark[2] = agenda.purges


# ----------------------------------------------------------------------
# reference agenda
# ----------------------------------------------------------------------

class HeapAgenda:
    """Binary-heap agenda over C-comparable entry tuples (reference)."""

    kind = "heap"

    __slots__ = ("_heap", "inserts", "pops", "purges")

    def __init__(self) -> None:
        self._heap: List[Entry] = []
        self.inserts = 0
        self.pops = 0
        self.purges = 0

    # -- insertion --------------------------------------------------------
    def push(self, ev: Event) -> int:
        """Insert ``ev``; returns the entry count after insertion."""
        heapq.heappush(self._heap, (ev.time, ev.priority, ev.seq, ev))
        self.inserts += 1
        return len(self._heap)

    def push_entry(self, entry: Entry) -> int:
        """Re-insert an existing entry tuple (batch leftovers)."""
        heapq.heappush(self._heap, entry)
        self.inserts += 1
        return len(self._heap)

    # -- extraction -------------------------------------------------------
    def next_time(self) -> float:
        """Purge dead head entries; the next pending time or ``inf``."""
        heap = self._heap
        heappop = heapq.heappop
        while heap:
            ev = heap[0][3]
            if ev._fired or ev._cancelled:
                heappop(heap)
                self.purges += 1
            else:
                return heap[0][0]
        return _INF

    def pop_next(self) -> Optional[Event]:
        """Pop the earliest pending event (purging dead heads)."""
        heap = self._heap
        heappop = heapq.heappop
        while heap:
            ev = heappop(heap)[3]
            if ev._fired or ev._cancelled:
                self.purges += 1
                continue
            self.pops += 1
            return ev
        return None

    def pop_batch(self, out: List[Entry]) -> float:
        """Drain every entry sharing the head timestamp into ``out``.

        Caller must have run :meth:`next_time` (head is pending).  Dead
        entries *behind* the head at the same time ride along — the
        reference loop would purge them only at later pop boundaries,
        and the kernel's combined depth accounting relies on them still
        being counted until the batch cursor passes them.
        """
        heap = self._heap
        heappop = heapq.heappop
        t = heap[0][0]
        while heap and heap[0][0] == t:
            out.append(heappop(heap))
        self.pops += len(out)
        return t

    def pop_run(self, out: List[Entry]):
        """Fused purge + peek + same-timestamp drain: one call per
        kernel iteration instead of the ``next_time``/``pop_batch``
        pair.

        Three-way return, discriminated by type (the singleton case is
        the overwhelmingly common one on jittered schedules, and
        returning the entry directly spares the caller all list
        traffic):

        * the lone head **entry tuple** when exactly one live event sits
          at the head timestamp (``out`` untouched);
        * the drained **timestamp** (float) with the batch appended to
          ``out`` when several do;
        * ``inf`` (float) leaving ``out`` empty when nothing is pending.
        """
        heap = self._heap
        heappop = heapq.heappop
        while heap:
            entry = heap[0]
            ev = entry[3]
            if ev._fired or ev._cancelled:
                heappop(heap)
                self.purges += 1
                continue
            t = entry[0]
            first = heappop(heap)
            if not heap or heap[0][0] != t:
                self.pops += 1
                return first
            out.append(first)
            while heap and heap[0][0] == t:
                out.append(heappop(heap))
            self.pops += len(out)
            return t
        return _INF

    # -- inspection -------------------------------------------------------
    def __len__(self) -> int:
        return len(self._heap)

    def pending_count(self) -> int:
        count = 0
        for entry in self._heap:
            ev = entry[3]
            if not (ev._fired or ev._cancelled):
                count += 1
        return count

    def ordered(self) -> List[Event]:
        """Pending events in fire order (C tuple sort, no key calls)."""
        live = [entry for entry in self._heap
                if not (entry[3]._fired or entry[3]._cancelled)]
        live.sort()
        return [entry[3] for entry in live]


# ----------------------------------------------------------------------
# calendar queue
# ----------------------------------------------------------------------

class CalendarAgenda:
    """Calendar-queue agenda (sorted buckets over a circular year).

    Kept digest-identical to :class:`HeapAgenda` by construction: same
    total order, same lazy-purge boundary, same ``len()`` at every push
    point (see module docstring).
    """

    kind = "calendar"

    MIN_BUCKETS = 8
    #: Width estimation samples this many head-most entries on resize.
    SAMPLE = 25
    #: Bucket width = WIDTH_FACTOR × mean head gap.  Wider buckets trade
    #: cheap C-level ``insort``/``bisect`` work inside a bucket for fewer
    #: pure-Python epoch scans between buckets, which is the right trade
    #: under churn (most entries die before their epoch is reached).
    WIDTH_FACTOR = 3.0

    __slots__ = ("_buckets", "_nbuckets", "_mask", "_width", "_count",
                 "_last_time", "_grow_at", "_shrink_at", "_head",
                 "inserts", "pops", "purges")

    def __init__(self) -> None:
        self._nbuckets = self.MIN_BUCKETS
        self._mask = self._nbuckets - 1
        self._buckets: List[List[Entry]] = [[] for _ in
                                            range(self._nbuckets)]
        self._width = 1.0
        self._count = 0
        self._last_time = 0.0
        self._grow_at = 2 * self._nbuckets
        self._shrink_at = -1
        # Cache of the bucket holding the global minimum, filled by
        # next_time() and consumed by the following pop — the hot
        # peek/pop pair then runs one bucket scan per event, not two.
        # Invariant: when set, ``_head[0]`` IS the global-minimum entry
        # (alive or since-cancelled); any insert that could precede it
        # clears the cache, as does every pop and resize.
        self._head: Optional[List[Entry]] = None
        self.inserts = 0
        self.pops = 0
        self.purges = 0

    # -- insertion --------------------------------------------------------
    def push(self, ev: Event) -> int:
        # Same body as push_entry, inlined: this is the hottest insert
        # path (one call per scheduled event).
        t = ev.time
        entry = (t, ev.priority, ev.seq, ev)
        b = self._buckets[int(t / self._width) & self._mask]
        insort(b, entry)
        head = self._head
        if head is not None and head is not b and entry < head[0]:
            self._head = None
        if t < self._last_time:
            self._last_time = t
        self.inserts += 1
        self._count += 1
        if self._count > self._grow_at:
            self._resize(self._nbuckets * 2)
        return self._count

    def push_entry(self, entry: Entry) -> int:
        t = entry[0]
        b = self._buckets[int(t / self._width) & self._mask]
        insort(b, entry)
        head = self._head
        if head is not None and head is not b and entry < head[0]:
            # A new minimum may now live in a different bucket.  (An
            # insert into the cached bucket itself keeps the cache
            # valid: insort keeps that bucket sorted.)
            self._head = None
        if t < self._last_time:
            # The scan anchor only ever advances at pops; an insert
            # below it (legal whenever the owning clock still trails
            # the last pop, e.g. paused-run injection) must pull it
            # back or the minimum scan would start past the new entry.
            self._last_time = t
        self.inserts += 1
        self._count += 1
        if self._count > self._grow_at:
            self._resize(self._nbuckets * 2)
        return self._count

    # -- minimum search ---------------------------------------------------
    def _min_bucket(self) -> Optional[List[Entry]]:
        """The bucket holding the global-minimum entry (``None`` when
        empty).  Amortized O(1) when the width matches the event gap:
        the scan starts at the last-popped epoch and a head qualifies
        iff its own ``int(time / width)`` equals the scanned epoch —
        the exact insert-time indexing, so placement and search can
        never disagree at a float boundary."""
        if not self._count:
            return None
        buckets = self._buckets
        mask = self._mask
        width = self._width
        base = int(self._last_time / width)
        for k in range(self._nbuckets):
            epoch = base + k
            b = buckets[epoch & mask]
            if b and int(b[0][0] / width) == epoch:
                # Advance the anchor to the found minimum — an *entry
                # time actually present*, never a reconstructed bucket
                # bound — so a purge-heavy stretch (lazily-cancelled
                # tail) walks each epoch once instead of rescanning
                # from the last pop per purge.  Safe because
                # push_entry pulls the anchor back under any later
                # insert below it.
                self._last_time = b[0][0]
                return b
        # Sparse tail: the minimum lies beyond a full year — take the
        # least head directly.  Distinct buckets can never hold equal
        # times (same time => same bucket), so time alone decides.
        best = None
        best_t = _INF
        for b in buckets:
            if b and b[0][0] < best_t:
                best = b
                best_t = b[0][0]
        if best is not None:
            self._last_time = best_t
        return best

    # -- extraction -------------------------------------------------------
    def next_time(self) -> float:
        b = self._head
        if b is not None:
            entry = b[0]
            ev = entry[3]
            if not (ev._fired or ev._cancelled):
                return entry[0]
            # The cached minimum died (cancelled after the last peek);
            # purge it here — it is still the global minimum — and
            # fall through to a fresh scan.
            del b[0]
            self._count -= 1
            self.purges += 1
            self._head = None
        while self._count:
            b = self._min_bucket()
            entry = b[0]
            ev = entry[3]
            if ev._fired or ev._cancelled:
                del b[0]
                self._count -= 1
                self.purges += 1
                continue
            # No re-anchoring here: peeking must not advance the scan
            # anchor past times that may still legally be inserted.
            self._head = b
            return entry[0]
        return _INF

    def pop_next(self) -> Optional[Event]:
        b = self._head
        self._head = None
        while self._count:
            if b is None:
                b = self._min_bucket()
            entry = b[0]
            del b[0]
            self._count -= 1
            b = None            # head consumed: the next probe rescans
            ev = entry[3]
            if ev._fired or ev._cancelled:
                self.purges += 1
                continue
            self.pops += 1
            self._last_time = entry[0]
            if self._count < self._shrink_at:
                self._resize(self._nbuckets // 2)
            return ev
        return None

    def pop_batch(self, out: List[Entry]) -> float:
        """Drain every entry at the head timestamp (see HeapAgenda)."""
        b = self._head
        if b is None:
            b = self._min_bucket()
        else:
            self._head = None
        t = b[0][0]
        if len(b) == 1:
            out.append(b.pop())
        elif b[-1][0] == t:
            out.extend(b)
            del b[:]
        else:
            # (t, inf) sorts after every (t, priority, seq, ev) because
            # priority is finite.
            hi = bisect_right(b, (t, _INF))
            out.extend(b[:hi])
            del b[:hi]
        taken = len(out)
        self._count -= taken
        self.pops += taken
        self._last_time = t
        if self._count < self._shrink_at:
            self._resize(self._nbuckets // 2)
        return t

    def pop_run(self, out: List[Entry]):
        """Fused purge + peek + same-timestamp drain (same three-way
        return contract as HeapAgenda ``pop_run``).

        All entries sharing a timestamp land in the same bucket (the
        index is a pure function of the time), so ``b[1][0] != t`` is a
        complete singleton test."""
        b = self._head
        self._head = None
        while self._count:
            if b is None:
                # Inlined first probe of _min_bucket: the next event
                # usually shares the anchor's epoch (width is a few
                # mean gaps), so one bucket check avoids the scan-call
                # entirely on the hot path.
                width = self._width
                base = int(self._last_time / width)
                b = self._buckets[base & self._mask]
                if not b or int(b[0][0] / width) != base:
                    b = self._min_bucket()
            entry = b[0]
            ev = entry[3]
            if ev._fired or ev._cancelled:
                del b[0]
                self._count -= 1
                self.purges += 1
                b = None
                continue
            t = entry[0]
            if len(b) == 1 or b[1][0] != t:
                del b[0]
                count = self._count - 1
                self.pops += 1
                self._count = count
                self._last_time = t
                if count < self._shrink_at:
                    self._resize(self._nbuckets // 2)
                return entry
            if b[-1][0] == t:
                out.extend(b)
                del b[:]
            else:
                hi = bisect_right(b, (t, _INF))
                out.extend(b[:hi])
                del b[:hi]
            taken = len(out)
            count = self._count - taken
            self.pops += taken
            self._count = count
            self._last_time = t
            if count < self._shrink_at:
                self._resize(self._nbuckets // 2)
            return t
        return _INF

    # -- resizing ---------------------------------------------------------
    def _resize(self, nbuckets: int) -> None:
        if nbuckets < self.MIN_BUCKETS:
            nbuckets = self.MIN_BUCKETS
        self._head = None
        entries: List[Entry] = []
        for b in self._buckets:
            entries.extend(b)
        self._width = self._estimate_width(entries)
        self._nbuckets = nbuckets
        self._mask = nbuckets - 1
        self._grow_at = 2 * nbuckets
        self._shrink_at = (nbuckets // 2 if nbuckets > self.MIN_BUCKETS
                           else -1)
        buckets: List[List[Entry]] = [[] for _ in range(nbuckets)]
        width = self._width
        mask = self._mask
        for entry in entries:
            buckets[int(entry[0] / width) & mask].append(entry)
        for b in buckets:
            b.sort()
        self._buckets = buckets

    def _estimate_width(self, entries: List[Entry]) -> float:
        """Bucket width from the mean gap of the head-most entries.

        Sampling only near the head keeps far-future outliers (parked
        pulse events at huge timestamps) from inflating the width into
        a single-bucket degenerate layout."""
        if len(entries) < 2:
            return self._width
        head = heapq.nsmallest(self.SAMPLE, (e[0] for e in entries))
        gaps = [b - a for a, b in zip(head, head[1:]) if b > a]
        if not gaps:
            return self._width
        width = self.WIDTH_FACTOR * (sum(gaps) / len(gaps))
        if not (width > 0.0) or width == _INF:
            return self._width
        return width

    # -- inspection -------------------------------------------------------
    def __len__(self) -> int:
        return self._count

    def pending_count(self) -> int:
        count = 0
        for b in self._buckets:
            for entry in b:
                ev = entry[3]
                if not (ev._fired or ev._cancelled):
                    count += 1
        return count

    def ordered(self) -> List[Event]:
        live: List[Entry] = []
        for b in self._buckets:
            live.extend(entry for entry in b
                        if not (entry[3]._fired or entry[3]._cancelled))
        # Concatenation of sorted runs: timsort finds them.
        live.sort()
        return [entry[3] for entry in live]


def make_agenda(calendar: bool) -> "HeapAgenda | CalendarAgenda":
    """The agenda for one simulator (selected at construction)."""
    return CalendarAgenda() if calendar else HeapAgenda()
