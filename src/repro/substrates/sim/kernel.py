"""The discrete-event simulation kernel.

A :class:`Simulator` owns a binary-heap agenda of :class:`~repro.substrates.
sim.events.Event` objects and advances simulated time by popping the
earliest event.  Processes (generator coroutines) are layered on top in
:mod:`repro.substrates.sim.process`.

Design notes
------------
* Deterministic: ties broken by ``(priority, seq)``; all randomness comes
  from :class:`~repro.substrates.sim.rng.RngRegistry` streams owned by the
  simulator, never from global state.
* The kernel is single-threaded by construction — the concurrency of the
  Wandering Network is *simulated* concurrency, which keeps every
  experiment reproducible.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Dict, Iterator, Optional

from ...obs import Observability
from ...perf.switches import switches as _opt
from .errors import SchedulingError
from .events import Event, NORMAL
from .rng import RngRegistry
from .trace import TraceBus


class Simulator:
    """A deterministic discrete-event simulator.

    Parameters
    ----------
    seed:
        Master seed.  Every named RNG stream derived through :attr:`rng`
        is a deterministic function of this seed and the stream name.
    """

    def __init__(self, seed: int = 0):
        self._now = 0.0
        self._heap: list[Event] = []
        self._running = False
        self._stopped = False
        self.events_executed = 0
        #: Deepest the agenda has ever been (pending + lazily-cancelled
        #: entries).  Deterministic for a seeded run, so benchmark
        #: digests may include it.
        self.peak_agenda_depth = 0
        self.rng = RngRegistry(seed)
        # lets the sanitizer tape stamp draws with simulated time
        self.rng.clock = self
        self.trace = TraceBus(self)
        self.seed = seed
        #: Armed by ``obs.enable(profiling=True)``; ``None`` keeps the
        #: step loop on its unprofiled fast path.
        self._profiler = None
        #: Armed by ``obs.flight(capacity)``; ``None`` keeps the step
        #: loop free of the ring-buffer append.
        self._flight = None
        self.obs = Observability(self)

    # -- time -------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    # -- scheduling -------------------------------------------------------
    def schedule_at(self, time: float, priority: int = NORMAL,
                    name: Optional[str] = None) -> Event:
        """Create and enqueue a bare event at absolute ``time``."""
        if time < self._now:
            raise SchedulingError(
                f"cannot schedule at {time} (now={self._now})")
        ev = Event(time, priority, name=name)
        heapq.heappush(self._heap, ev)
        depth = len(self._heap)
        if depth > self.peak_agenda_depth:
            self.peak_agenda_depth = depth
        return ev

    def schedule(self, delay: float, priority: int = NORMAL,
                 name: Optional[str] = None) -> Event:
        """Create and enqueue a bare event ``delay`` seconds from now."""
        if delay < 0:
            raise SchedulingError(f"negative delay: {delay}")
        return self.schedule_at(self._now + delay, priority, name=name)

    def call_at(self, time: float, fn: Callable[..., Any], *args: Any,
                priority: int = NORMAL, name: Optional[str] = None) -> Event:
        """Call ``fn(*args)`` at absolute simulated ``time``."""
        ev = self.schedule_at(time, priority, name=name or getattr(
            fn, "__name__", "call"))
        ev.add_callback(lambda _ev: fn(*args))
        return ev

    def call_in(self, delay: float, fn: Callable[..., Any], *args: Any,
                priority: int = NORMAL, name: Optional[str] = None) -> Event:
        """Call ``fn(*args)`` after ``delay`` simulated seconds."""
        if delay < 0:
            raise SchedulingError(f"negative delay: {delay}")
        return self.call_at(self._now + delay, fn, *args,
                            priority=priority, name=name)

    def every(self, interval: float, fn: Callable[..., Any], *args: Any,
              start: Optional[float] = None, jitter: float = 0.0,
              stream: str = "kernel.every") -> "PeriodicTask":
        """Call ``fn(*args)`` every ``interval`` seconds (optionally jittered).

        Returns a :class:`PeriodicTask` handle whose :meth:`~PeriodicTask.
        stop` method cancels future firings.
        """
        return PeriodicTask(self, interval, fn, args, start=start,
                            jitter=jitter, stream=stream)

    # -- execution --------------------------------------------------------
    def peek(self) -> float:
        """Time of the next pending event, or ``float('inf')``."""
        while self._heap and not self._heap[0].pending:
            heapq.heappop(self._heap)
        return self._heap[0].time if self._heap else float("inf")

    def step(self) -> bool:
        """Execute the next pending event.  Returns False if none remain."""
        while self._heap:
            ev = heapq.heappop(self._heap)
            if not ev.pending:
                continue
            self._now = ev.time
            flight = self._flight
            if flight is not None:
                flight.note_event(ev.time, ev.name)
            prof = self._profiler
            if prof is not None:
                t0 = prof.clock()
                ev.fire()
                prof.record(ev.name or "event", prof.clock() - t0,
                            len(self._heap))
            else:
                ev.fire()
            self.events_executed += 1
            return True
        return False

    def profile(self, top: int = 10) -> Dict[str, Any]:
        """Kernel profile summary (per-handler wall time, queue depth,
        events/sec).  Empty until ``obs.enable(profiling=True)`` has run
        at least one event."""
        if self.obs.profiler is None:
            return {"events": 0, "wall_s": 0.0, "events_per_sec": 0.0,
                    "max_queue_depth": 0, "mean_queue_depth": 0.0,
                    "handlers": []}
        return self.obs.profiler.summary(top=top)

    def run(self, until: Optional[float] = None,
            max_events: Optional[int] = None) -> float:
        """Run until the agenda empties, ``until`` is reached, or
        ``max_events`` have executed.  Returns the final simulated time.

        Pause/resume contract: a run paused at a horizon draws no
        extra RNG or counter state — splitting one run into
        ``run(until=t1); run(until=t2); ...`` executes the exact same
        events, callbacks, and stream draws as a single
        ``run(until=tN)``, and between segments ``schedule_at(t)`` is
        legal for any ``t >= now`` (external event injection).  After a
        ``max_events`` break the clock stays at the last executed event
        (never clamped past pending work).
        """
        self._running = True
        self._stopped = False
        if until is not None and until < self._now:
            raise SchedulingError(
                f"run(until={until}) is in the past (now={self._now})")
        try:
            if _opt.kernel_fast_loop:
                self._run_fast(until, max_events)
            else:
                self._run_reference(until, max_events)
        finally:
            self._running = False
        return self._now

    def _run_reference(self, until: Optional[float],
                       max_events: Optional[int]) -> None:
        """The original peek()/step() loop, kept as the semantic oracle
        for the fast loop (``perf.switches.kernel_fast_loop = False``)."""
        executed = 0
        budget_hit = False
        while not self._stopped:
            nxt = self.peek()
            if nxt == float("inf"):
                break
            if until is not None and nxt > until:
                self._now = until
                break
            if max_events is not None and executed >= max_events:
                # Clock stays at the last executed event: pending events
                # at times <= until remain, so advancing to ``until``
                # here would let time run backwards on resume.
                budget_hit = True
                break
            self.step()
            executed += 1
        else:
            # stop() was called; clock stays at the stopping event.
            pass
        if (until is not None and self._now < until
                and not self._stopped and not budget_hit):
            self._now = until

    def _run_fast(self, until: Optional[float],
                  max_events: Optional[int]) -> None:
        """Inlined event loop: one purge-and-pop per event.

        Semantically identical to :meth:`_run_reference` — same purge
        points, same check order (until before max_events), same
        trailing clamp of ``_now`` to ``until`` (skipped after a
        ``max_events`` break, where pending events at times <= ``until``
        remain) — but it touches the heap once per event instead of
        twice (``peek`` then ``step``) and hoists the method/attribute
        lookups out of the loop.
        """
        heap = self._heap
        heappop = heapq.heappop
        executed = 0
        budget_hit = False
        while not self._stopped:
            # Single lazy-cancellation purge (the reference path purges
            # in peek() and then re-checks pending in step()).
            while heap and (heap[0]._fired or heap[0]._cancelled):
                heappop(heap)
            if not heap:
                break
            ev = heap[0]
            if until is not None and ev.time > until:
                self._now = until
                break
            if max_events is not None and executed >= max_events:
                budget_hit = True
                break
            heappop(heap)
            self._now = ev.time
            flight = self._flight
            if flight is not None:
                flight.note_event(ev.time, ev.name)
            prof = self._profiler
            if prof is not None:
                t0 = prof.clock()
                ev.fire()
                prof.record(ev.name or "event", prof.clock() - t0,
                            len(heap))
            else:
                ev.fire()
            self.events_executed += 1
            executed += 1
        if (until is not None and self._now < until
                and not self._stopped and not budget_hit):
            self._now = until

    def stop(self) -> None:
        """Request that :meth:`run` return after the current event."""
        self._stopped = True

    @property
    def pending_events(self) -> int:
        return sum(1 for ev in self._heap if ev.pending)

    def agenda(self) -> Iterator[Event]:
        """Pending events in fire order (for debugging/inspection)."""
        return iter(sorted((ev for ev in self._heap if ev.pending),
                           key=Event.sort_key))

    def __repr__(self) -> str:
        return (f"<Simulator t={self._now:.6g} pending={self.pending_events} "
                f"executed={self.events_executed}>")


class PeriodicTask:
    """Handle for a repeating callback created by :meth:`Simulator.every`."""

    def __init__(self, sim: Simulator, interval: float,
                 fn: Callable[..., Any], args: tuple,
                 start: Optional[float] = None, jitter: float = 0.0,
                 stream: str = "kernel.every"):
        if interval <= 0:
            raise SchedulingError(f"non-positive interval: {interval}")
        self.sim = sim
        self.interval = float(interval)
        self.fn = fn
        self.args = args
        self.jitter = float(jitter)
        self.stream = stream
        self.fired = 0
        self._stopped = False
        self._event: Optional[Event] = None
        first = self.interval if start is None else max(0.0, start - sim.now)
        self._arm(first)

    def _arm(self, delay: float) -> None:
        if self._stopped:
            return
        if self.jitter > 0.0:
            delay += self.sim.rng.stream(self.stream).uniform(0, self.jitter)
        self._event = self.sim.call_in(delay, self._fire, name="periodic")

    def _fire(self) -> None:
        if self._stopped:
            return
        self.fired += 1
        self.fn(*self.args)
        self._arm(self.interval)

    def stop(self) -> None:
        self._stopped = True
        if self._event is not None:
            self._event.cancel()

    @property
    def stopped(self) -> bool:
        return self._stopped
