"""The discrete-event simulation kernel.

A :class:`Simulator` owns a pluggable agenda (:mod:`repro.substrates.
sim.agenda`) of :class:`~repro.substrates.sim.events.Event` objects and
advances simulated time by popping the earliest event.  Processes
(generator coroutines) are layered on top in
:mod:`repro.substrates.sim.process`.

Design notes
------------
* Deterministic: ties broken by ``(priority, seq)``; all randomness comes
  from :class:`~repro.substrates.sim.rng.RngRegistry` streams owned by the
  simulator, never from global state.
* The kernel is single-threaded by construction — the concurrency of the
  Wandering Network is *simulated* concurrency, which keeps every
  experiment reproducible.
* The agenda structure (binary heap reference vs. calendar queue) is
  selected at construction from ``perf.switches.agenda_calendar``; both
  are digest-identical by the ordering/parity contract in
  :mod:`repro.substrates.sim.agenda`.
* With ``perf.switches.batch_delivery`` the fast loop drains every
  event sharing the head timestamp into one batch.  Depth parity with
  the one-at-a-time reference is kept by combined accounting: a push
  during a batch reports ``len(agenda) + remaining batch entries``,
  and dead batch entries stay counted until the batch cursor passes
  them (exactly when the reference heap would have purged them).
"""

from __future__ import annotations

from bisect import insort
from sys import getrefcount as _refcount
from typing import Any, Callable, Dict, Iterator, List, Optional

from ...obs import Observability
from ...perf.pool import event_pool as _event_pool
from ...perf.switches import switches as _opt
from .agenda import Entry, make_agenda, tally_absorb
from .errors import SchedulingError
from .events import Event, NORMAL, _seq as _event_seq
from .rng import RngRegistry
from .trace import TraceBus

_INF = float("inf")


class Simulator:
    """A deterministic discrete-event simulator.

    Parameters
    ----------
    seed:
        Master seed.  Every named RNG stream derived through :attr:`rng`
        is a deterministic function of this seed and the stream name.
    """

    def __init__(self, seed: int = 0):
        self._now = 0.0
        self._agenda = make_agenda(_opt.agenda_calendar)
        # Bound once: the agenda never changes after construction and
        # schedule_at is the hottest method in the kernel.
        self._agenda_push = self._agenda.push
        self._running = False
        self._stopped = False
        self.events_executed = 0
        #: Deepest the agenda has ever been (pending + lazily-cancelled
        #: entries; during batched execution the not-yet-reached batch
        #: entries still count).  Deterministic for a seeded run, so
        #: benchmark digests may include it.
        self.peak_agenda_depth = 0
        # Live same-timestamp batch (``batch_delivery``): the entry
        # list being drained, the time it fires at (None outside a
        # batch), the cursor, and the count of entries after the
        # cursor — consulted by schedule_at for same-instant insertion
        # and combined depth.
        self._batch: List[Entry] = []
        self._batch_time: Optional[float] = None
        self._batch_index = 0
        self._batch_pending = 0
        #: Largest same-timestamp batch drained so far (diagnostic).
        self.max_batch = 0
        # Agenda counters already folded into the process tally.
        self._stats_mark = [0, 0, 0]
        self.rng = RngRegistry(seed)
        # lets the sanitizer tape stamp draws with simulated time
        self.rng.clock = self
        self.trace = TraceBus(self)
        self.seed = seed
        #: Armed by ``obs.enable(profiling=True)``; ``None`` keeps the
        #: step loop on its unprofiled fast path.
        self._profiler = None
        #: Armed by ``obs.flight(capacity)``; ``None`` keeps the step
        #: loop free of the ring-buffer append.
        self._flight = None
        self.obs = Observability(self)

    # -- time -------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    # -- scheduling -------------------------------------------------------
    def schedule_at(self, time: float, priority: int = NORMAL,
                    name: Optional[str] = None) -> Event:
        """Create and enqueue a bare event at absolute ``time``."""
        if time < self._now:
            raise SchedulingError(
                f"cannot schedule at {time} (now={self._now})")
        if _opt.object_pool:
            # Inlined FreeList.grab + Event._reuse (this is the hottest
            # allocation site; the re-init mirrors Event.__init__
            # exactly, including the _seq draw).
            items = _event_pool.items
            if items:
                _event_pool.hits += 1
                ev = items.pop()
                ev.time = float(time)
                ev.priority = int(priority)
                ev.seq = next(_event_seq)
                ev.value = None
                ev._fired = False
                ev._cancelled = False
                ev.name = name
            else:
                _event_pool.misses += 1
                ev = Event(time, priority, name=name)
        else:
            ev = Event(time, priority, name=name)
        if self._batch_time == time:
            # Scheduled at the very instant being drained: the event
            # belongs in the live batch, ordered by (priority, seq)
            # among the entries not yet reached — exactly where the
            # reference heap would pop it next.
            insort(self._batch, (ev.time, ev.priority, ev.seq, ev),
                   lo=self._batch_index + 1)
            self._batch_pending += 1
            depth = len(self._agenda) + self._batch_pending
        else:
            depth = self._agenda_push(ev) + self._batch_pending
        if depth > self.peak_agenda_depth:
            self.peak_agenda_depth = depth
        return ev

    def schedule(self, delay: float, priority: int = NORMAL,
                 name: Optional[str] = None) -> Event:
        """Create and enqueue a bare event ``delay`` seconds from now."""
        if delay < 0:
            raise SchedulingError(f"negative delay: {delay}")
        return self.schedule_at(self._now + delay, priority, name=name)

    def call_at(self, time: float, fn: Callable[..., Any], *args: Any,
                priority: int = NORMAL, name: Optional[str] = None) -> Event:
        """Call ``fn(*args)`` at absolute simulated ``time``."""
        ev = self.schedule_at(time, priority, name=name or getattr(
            fn, "__name__", "call"))
        # Direct (fn, args) storage fires in the same position the old
        # first-callback lambda did, without the closure allocation.
        ev._fn = fn
        ev._args = args
        return ev

    def call_in(self, delay: float, fn: Callable[..., Any], *args: Any,
                priority: int = NORMAL, name: Optional[str] = None) -> Event:
        """Call ``fn(*args)`` after ``delay`` simulated seconds.

        This is the hottest scheduling entry point, so the whole
        ``schedule_at`` body is inlined here (pool grab, live-batch
        insort, agenda push, peak-depth tracking) — one frame instead of
        three.  ``delay >= 0`` implies ``time >= now``, so the absolute
        time check in ``schedule_at`` is vacuous and dropped.
        """
        if delay < 0:
            raise SchedulingError(f"negative delay: {delay}")
        time = self._now + delay
        if _opt.object_pool:
            items = _event_pool.items
            if items:
                _event_pool.hits += 1
                ev = items.pop()
                ev.time = float(time)
                ev.priority = int(priority)
                ev.seq = next(_event_seq)
                ev.value = None
                ev._fired = False
                ev._cancelled = False
            else:
                _event_pool.misses += 1
                ev = Event(time, priority)
        else:
            ev = Event(time, priority)
        ev.name = name or getattr(fn, "__name__", "call")
        ev._fn = fn
        ev._args = args
        if self._batch_time == time:
            insort(self._batch, (ev.time, ev.priority, ev.seq, ev),
                   lo=self._batch_index + 1)
            self._batch_pending += 1
            depth = len(self._agenda) + self._batch_pending
        else:
            depth = self._agenda_push(ev) + self._batch_pending
        if depth > self.peak_agenda_depth:
            self.peak_agenda_depth = depth
        return ev

    def every(self, interval: float, fn: Callable[..., Any], *args: Any,
              start: Optional[float] = None, jitter: float = 0.0,
              stream: str = "kernel.every") -> "PeriodicTask":
        """Call ``fn(*args)`` every ``interval`` seconds (optionally jittered).

        Returns a :class:`PeriodicTask` handle whose :meth:`~PeriodicTask.
        stop` method cancels future firings.
        """
        return PeriodicTask(self, interval, fn, args, start=start,
                            jitter=jitter, stream=stream)

    # -- execution --------------------------------------------------------
    def peek(self) -> float:
        """Time of the next pending event, or ``float('inf')``."""
        if self._batch_time is not None and self._batch_pending:
            for entry in self._batch[self._batch_index + 1:]:
                ev = entry[3]
                if not (ev._fired or ev._cancelled):
                    return self._batch_time
        return self._agenda.next_time()

    def step(self) -> bool:
        """Execute the next pending event.  Returns False if none remain."""
        ev = self._agenda.pop_next()
        if ev is None:
            return False
        self._now = ev.time
        flight = self._flight
        if flight is not None:
            flight.note_event(ev.time, ev.name)
        prof = self._profiler
        if prof is not None:
            t0 = prof.clock()
            ev.fire()
            prof.record(ev.name or "event", prof.clock() - t0,
                        len(self._agenda))
        else:
            ev.fire()
        self.events_executed += 1
        if _opt.object_pool and _refcount(ev) == 2:
            _event_pool.put(ev._recycle())
        return True

    def profile(self, top: int = 10) -> Dict[str, Any]:
        """Kernel profile summary (per-handler wall time, queue depth,
        events/sec).  Empty until ``obs.enable(profiling=True)`` has run
        at least one event."""
        if self.obs.profiler is None:
            return {"events": 0, "wall_s": 0.0, "events_per_sec": 0.0,
                    "max_queue_depth": 0, "mean_queue_depth": 0.0,
                    "handlers": []}
        return self.obs.profiler.summary(top=top)

    def run(self, until: Optional[float] = None,
            max_events: Optional[int] = None) -> float:
        """Run until the agenda empties, ``until`` is reached, or
        ``max_events`` have executed.  Returns the final simulated time.

        Pause/resume contract: a run paused at a horizon draws no
        extra RNG or counter state — splitting one run into
        ``run(until=t1); run(until=t2); ...`` executes the exact same
        events, callbacks, and stream draws as a single
        ``run(until=tN)``, and between segments ``schedule_at(t)`` is
        legal for any ``t >= now`` (external event injection).  After a
        ``max_events`` break the clock stays at the last executed event
        (never clamped past pending work).
        """
        self._running = True
        self._stopped = False
        if until is not None and until < self._now:
            raise SchedulingError(
                f"run(until={until}) is in the past (now={self._now})")
        try:
            if _opt.kernel_fast_loop:
                if _opt.batch_delivery:
                    self._run_batched(until, max_events)
                else:
                    self._run_fast(until, max_events)
            else:
                self._run_reference(until, max_events)
        finally:
            self._running = False
            self._batch_time = None
            self._batch_pending = 0
            tally_absorb(self._agenda, self._stats_mark, self.max_batch)
            if self.obs.on:
                self.obs.sync_kernel_stats()
        return self._now

    def _run_reference(self, until: Optional[float],
                       max_events: Optional[int]) -> None:
        """The original peek()/step() loop, kept as the semantic oracle
        for the fast loops (``perf.switches.kernel_fast_loop = False``)."""
        executed = 0
        budget_hit = False
        while not self._stopped:
            nxt = self.peek()
            if nxt == _INF:
                break
            if until is not None and nxt > until:
                self._now = until
                break
            if max_events is not None and executed >= max_events:
                # Clock stays at the last executed event: pending events
                # at times <= until remain, so advancing to ``until``
                # here would let time run backwards on resume.
                budget_hit = True
                break
            self.step()
            executed += 1
        else:
            # stop() was called; clock stays at the stopping event.
            pass
        if (until is not None and self._now < until
                and not self._stopped and not budget_hit):
            self._now = until

    def _run_fast(self, until: Optional[float],
                  max_events: Optional[int]) -> None:
        """Inlined event loop: one purge-and-peek and one pop per event.

        Semantically identical to :meth:`_run_reference` — same purge
        points, same check order (until before max_events), same
        trailing clamp of ``_now`` to ``until`` (skipped after a
        ``max_events`` break, where pending events at times <= ``until``
        remain) — but it hoists the method/attribute lookups out of the
        loop and recycles consumed events when the pool is on.
        """
        agenda = self._agenda
        next_time = agenda.next_time
        pop_next = agenda.pop_next
        pool_on = _opt.object_pool
        put_event = _event_pool.put
        executed = 0
        budget_hit = False
        while not self._stopped:
            nxt = next_time()
            if nxt == _INF:
                break
            if until is not None and nxt > until:
                self._now = until
                break
            if max_events is not None and executed >= max_events:
                budget_hit = True
                break
            ev = pop_next()
            self._now = ev.time
            flight = self._flight
            if flight is not None:
                flight.note_event(ev.time, ev.name)
            prof = self._profiler
            if prof is not None:
                t0 = prof.clock()
                ev.fire()
                prof.record(ev.name or "event", prof.clock() - t0,
                            len(agenda))
            else:
                ev.fire()
            self.events_executed += 1
            executed += 1
            if pool_on and _refcount(ev) == 2:
                put_event(ev._recycle())
        if (until is not None and self._now < until
                and not self._stopped and not budget_hit):
            self._now = until

    def _run_batched(self, until: Optional[float],
                     max_events: Optional[int]) -> None:
        """Batched fast loop: drain all events at the head timestamp.

        Event order, purge boundaries, and depth accounting are
        byte-identical to the reference loop:

        * The drained batch preserves ``(priority, seq)`` order; events
          scheduled *at the batch instant* by a firing callback are
          insorted into the not-yet-reached suffix (schedule_at), which
          is exactly where the reference heap would pop them.
        * Dead entries ride in the batch and are discarded when the
          cursor reaches them — the same boundary (after the previous
          fire, before the next) at which the reference purge drops
          them — so combined depth matches at every push point.
        * A ``stop()`` or ``max_events`` break re-inserts the untouched
          batch suffix, leaving the agenda exactly as the reference
          loop's heap would stand.
        """
        agenda = self._agenda
        next_time = agenda.next_time
        pop_run = agenda.pop_run
        pool_on = _opt.object_pool
        put_event = _event_pool.put
        pool_items = _event_pool.items
        pool_cap = _event_pool.capacity
        # Sentinels collapse the per-iteration None checks into single
        # comparisons: ``nxt > _INF`` is never true, ``executed == -1``
        # is never true.
        horizon = _INF if until is None else until
        budget = -1 if max_events is None else max_events
        executed = 0
        budget_hit = False
        max_batch = self.max_batch
        batch = self._batch
        del batch[:]
        # Attaching a flight recorder or profiler is a run-boundary
        # operation, so the hooks are hoisted out of the loop.
        flight = self._flight
        prof = self._profiler
        while not self._stopped:
            if executed == budget:
                # Replicate the reference check order (inf, until,
                # budget) at this once-per-run boundary: the budget
                # break must not fire when the reference would have
                # stopped on an empty agenda or clamped at a horizon
                # first.
                nxt = next_time()
                if nxt == _INF:
                    break
                if nxt > horizon:
                    self._now = until
                    break
                budget_hit = True
                break
            ret = pop_run(batch)
            if type(ret) is tuple:
                # Singleton batch (the common case on jittered
                # schedules): pop_run returned the lone head entry and
                # left ``batch`` untouched.  The head is pending by
                # construction (pop_run purged dead heads) and the outer
                # loop already ran the stop/budget checks, so fire it
                # without engaging the batch bookkeeping.  A callback
                # scheduling at exactly this instant pushes into the
                # agenda, where it is the new head — the same position
                # the live-batch insort would give it — and combined
                # depth matches because ``_batch_pending`` stays 0 while
                # ``len(agenda)`` counts it.
                t = ret[0]
                if t > horizon:
                    # Past the horizon: the entry goes back whole — no
                    # user code ran, so no push point observes the dip.
                    agenda.push_entry(ret)
                    self._now = until
                    break
                self._now = t
                ev = ret[3]
                ret = None        # drop the entry's ref before recycle
                if max_batch == 0:
                    max_batch = 1
                if flight is not None:
                    flight.note_event(ev.time, ev.name)
                if prof is not None:
                    t0 = prof.clock()
                    ev.fire()
                    prof.record(ev.name or "event", prof.clock() - t0,
                                len(agenda))
                else:
                    # Inlined Event.fire: the event is pending by
                    # construction here, so the cancelled/double-fire
                    # guards cannot trigger.
                    ev._fired = True
                    fn = ev._fn
                    if fn is not None:
                        fn(*ev._args)
                    for cb in ev.callbacks:
                        cb(ev)
                self.events_executed += 1
                executed += 1
                if pool_on and _refcount(ev) == 2:
                    # Inlined Event._recycle + FreeList.put.
                    ev.callbacks.clear()
                    ev.value = None
                    ev.name = None
                    ev._fn = None
                    ev._args = ()
                    if len(pool_items) < pool_cap:
                        pool_items.append(ev)
                        _event_pool.recycled += 1
                    else:
                        _event_pool.dropped += 1
                continue
            nxt = ret
            if nxt == _INF:
                break
            if nxt > horizon:
                # Past the horizon: the drained batch goes back whole.
                # No user code runs between the drain and the re-push,
                # so no push point can observe the depth dip; entry
                # tuples are reused, so no id or RNG state is drawn.
                for entry in batch:
                    agenda.push_entry(entry)
                del batch[:]
                self._now = until
                break
            n = len(batch)
            if n > max_batch:
                max_batch = n
            self._now = nxt
            self._batch_time = nxt
            i = 0
            aborted = False
            while i < len(batch):       # callbacks may grow the batch
                entry = batch[i]
                ev = entry[3]
                if ev._fired or ev._cancelled:
                    # Lazy-cancellation disposal at the same boundary
                    # the reference heap purge would hit it.
                    agenda.purges += 1
                    batch[i] = None
                    i += 1
                    continue
                if self._stopped:
                    aborted = True
                    break
                if executed == budget:
                    budget_hit = True
                    aborted = True
                    break
                self._batch_index = i
                self._batch_pending = len(batch) - i - 1
                if flight is not None:
                    flight.note_event(ev.time, ev.name)
                if prof is not None:
                    t0 = prof.clock()
                    ev.fire()
                    prof.record(ev.name or "event", prof.clock() - t0,
                                len(agenda) + len(batch) - i - 1)
                else:
                    ev.fire()
                self.events_executed += 1
                executed += 1
                batch[i] = None          # drop the entry's ref first
                if pool_on and _refcount(ev) == 2:
                    put_event(ev._recycle())
                i += 1
            self._batch_time = None
            self._batch_index = 0
            self._batch_pending = 0
            if aborted:
                for entry in batch[i:]:
                    agenda.push_entry(entry)
                del batch[:]
                break
            del batch[:]
        self.max_batch = max_batch
        if (until is not None and self._now < until
                and not self._stopped and not budget_hit):
            self._now = until

    def stop(self) -> None:
        """Request that :meth:`run` return after the current event."""
        self._stopped = True

    @property
    def pending_events(self) -> int:
        count = self._agenda.pending_count()
        if self._batch_time is not None:
            for entry in self._batch[self._batch_index + 1:]:
                ev = entry[3]
                if not (ev._fired or ev._cancelled):
                    count += 1
        return count

    def agenda(self) -> Iterator[Event]:
        """Pending events in fire order (for debugging/inspection).

        Sorts entry tuples in C instead of calling a Python key per
        event; cancelled entries are filtered before the sort.
        """
        ordered = self._agenda.ordered()
        if self._batch_time is not None:
            live = [entry for entry in self._batch[self._batch_index + 1:]
                    if not (entry[3]._fired or entry[3]._cancelled)]
            if live:
                ordered = [e[3] for e in sorted(live)] + ordered
        return iter(ordered)

    def agenda_stats(self) -> Dict[str, int]:
        """This simulator's agenda operation counters (diagnostics)."""
        a = self._agenda
        return {"kind": a.kind, "inserts": a.inserts, "pops": a.pops,
                "purges": a.purges, "max_batch": self.max_batch,
                "depth": len(a), "peak_depth": self.peak_agenda_depth}

    def __repr__(self) -> str:
        return (f"<Simulator t={self._now:.6g} pending={self.pending_events} "
                f"executed={self.events_executed}>")


class PeriodicTask:
    """Handle for a repeating callback created by :meth:`Simulator.every`."""

    def __init__(self, sim: Simulator, interval: float,
                 fn: Callable[..., Any], args: tuple,
                 start: Optional[float] = None, jitter: float = 0.0,
                 stream: str = "kernel.every"):
        if interval <= 0:
            raise SchedulingError(f"non-positive interval: {interval}")
        self.sim = sim
        self.interval = float(interval)
        self.fn = fn
        self.args = args
        self.jitter = float(jitter)
        self.stream = stream
        self.fired = 0
        self._stopped = False
        self._event: Optional[Event] = None
        first = self.interval if start is None else max(0.0, start - sim.now)
        self._arm(first)

    def _arm(self, delay: float) -> None:
        if self._stopped:
            return
        if self.jitter > 0.0:
            delay += self.sim.rng.stream(self.stream).uniform(0, self.jitter)
        self._event = self.sim.call_in(delay, self._fire, name="periodic")

    def _fire(self) -> None:
        if self._stopped:
            return
        self.fired += 1
        self.fn(*self.args)
        self._arm(self.interval)

    def stop(self) -> None:
        self._stopped = True
        if self._event is not None:
            self._event.cancel()

    @property
    def stopped(self) -> bool:
        return self._stopped
