"""The network-wide protocol (code) registry.

In ANTS, code groups are identified by (a fingerprint of) their code; any
node holding the code can serve it to a neighbour.  We model the code
itself as a :class:`~repro.substrates.nodeos.CodeModule` whose ``entry``
is a Python callable ``handler(node, capsule) -> None`` — the simulated
program semantics.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from ..nodeos import CodeKind, CodeModule

CapsuleHandler = Callable[..., None]   # handler(node, capsule)


class ProtocolRegistry:
    """Maps code ids to their modules (with executable handlers).

    One registry per simulation — it stands for "the set of protocols
    that exist in the world", not for any node's knowledge.  Nodes only
    run code that has reached their cache.
    """

    def __init__(self):
        self._modules: Dict[str, CodeModule] = {}

    def register(self, code_id: str, handler: CapsuleHandler,
                 size_bytes: int = 4096, version: int = 1,
                 name: str = "") -> CodeModule:
        module = CodeModule(code_id, name=name or code_id, version=version,
                            size_bytes=size_bytes, kind=CodeKind.EE_CODE,
                            entry=handler)
        self._modules[code_id] = module
        return module

    def register_module(self, module: CodeModule) -> CodeModule:
        self._modules[module.code_id] = module
        return module

    def get(self, code_id: str) -> Optional[CodeModule]:
        return self._modules.get(code_id)

    def __contains__(self, code_id: str) -> bool:
        return code_id in self._modules

    def handler(self, code_id: str) -> Optional[CapsuleHandler]:
        module = self._modules.get(code_id)
        return module.entry if module is not None else None

    def __len__(self) -> int:
        return len(self._modules)


def forwarding_handler(node, capsule) -> None:
    """The default capsule program: plain forwarding toward ``dst``."""
    node.forward_capsule(capsule)
