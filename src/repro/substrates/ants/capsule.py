"""ANTS-style capsules.

The paper's Table 1 reference model leans on ANTS (Wetherall et al.,
OPENARCH'98): packets ("capsules") reference a *code group*; nodes that
lack the code demand-load it from the previous hop.  A capsule "may carry
program code, but do[es] not execute it" — the node does.
"""

from __future__ import annotations

from typing import Any, Hashable, Optional

from ..phys import Datagram

NodeId = Hashable


class Capsule(Datagram):
    """A datagram tagged with the code that must process it at each node."""

    __slots__ = ("code_id", "code_version", "prev_hop", "credential", "data")

    def __init__(self, src: NodeId, dst: NodeId, code_id: str,
                 size_bytes: int = 512, ttl: int = 64,
                 code_version: int = 1, credential: Any = None,
                 data: Any = None, **kw):
        super().__init__(src, dst, size_bytes=size_bytes, ttl=ttl, **kw)
        self.code_id = code_id
        self.code_version = int(code_version)
        #: Updated at every hop so a node knows whom to demand-load from.
        self.prev_hop: Optional[NodeId] = None
        self.credential = credential
        self.data = data

    def clone(self) -> "Capsule":
        twin = Capsule(self.src, self.dst, self.code_id,
                       size_bytes=self.size_bytes, ttl=self.ttl,
                       code_version=self.code_version,
                       credential=self.credential, data=self.data,
                       flow_id=self.flow_id)
        twin.created_at = self.created_at
        twin.hops = self.hops
        twin.prev_hop = self.prev_hop
        twin.meta = dict(self.meta)
        return twin

    def __repr__(self) -> str:
        return (f"<Capsule #{self.packet_id} {self.src}->{self.dst} "
                f"code={self.code_id}>")


class CodeRequest(Datagram):
    """Demand-pull: 'send me the code for this code_id'."""

    __slots__ = ("code_id", "min_version", "requester")

    def __init__(self, src: NodeId, dst: NodeId, code_id: str,
                 min_version: int = 1):
        super().__init__(src, dst, size_bytes=64, ttl=8)
        self.code_id = code_id
        self.min_version = min_version
        self.requester = src


class CodeReply(Datagram):
    """Demand-pull response carrying a code module."""

    __slots__ = ("module",)

    def __init__(self, src: NodeId, dst: NodeId, module):
        # The reply's wire size is dominated by the code it carries.
        super().__init__(src, dst, size_bytes=64 + module.size_bytes, ttl=8)
        self.module = module
