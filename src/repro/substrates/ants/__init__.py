"""Classic active-network substrate (ANTS-like, the 1G-WN baseline)."""

from .capsule import Capsule, CodeReply, CodeRequest
from .node import AntsNode, build_ants_network
from .registry import ProtocolRegistry, forwarding_handler

__all__ = ["Capsule", "CodeReply", "CodeRequest", "AntsNode",
           "build_ants_network", "ProtocolRegistry", "forwarding_handler"]
