"""Classic active-network node (the 1G Wandering Network baseline).

An :class:`AntsNode` is programmable at the execution-environment layer
only: capsules name a code id; if the node's cache lacks it, the node
demand-loads it from the capsule's previous hop (the ANTS code
distribution scheme), queueing the capsule meanwhile.  Everything below
the EE — the NodeOS layout, the hardware — is fixed.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Callable, Dict, Hashable, List, Optional

from ..nodeos import NodeOS
from ..phys import Datagram, NetworkFabric
from ..sim import Simulator
from .capsule import Capsule, CodeReply, CodeRequest
from .registry import ProtocolRegistry

NodeId = Hashable
DeliveryHandler = Callable[[Capsule, NodeId], None]


class AntsNode:
    """An ANTS-like active node with demand-pull code distribution."""

    def __init__(self, sim: Simulator, fabric: NetworkFabric,
                 node_id: NodeId, registry: ProtocolRegistry,
                 cache_bytes: int = 1 << 20,
                 cpu_ops_per_second: float = 1e8):
        self.sim = sim
        self.fabric = fabric
        self.node_id = node_id
        self.registry = registry
        self.nodeos = NodeOS(sim, node_id, cache_bytes=cache_bytes,
                             cpu_ops_per_second=cpu_ops_per_second)
        self._table: Dict[NodeId, NodeId] = {}
        self._table_version = -1
        self._pending: Dict[str, List[Capsule]] = defaultdict(list)
        self._requested: set = set()
        self._delivery_handlers: List[DeliveryHandler] = []
        # Local soft-state usable by capsule handlers (e.g. caching).
        self.soft_state: Dict = {}
        self.capsules_processed = 0
        self.capsules_delivered = 0
        self.code_fetches = 0
        self.dropped_no_route = 0
        self.dropped_no_code = 0
        fabric.attach(node_id, self)

    # -- application hookup -------------------------------------------------
    def on_deliver(self, fn: DeliveryHandler) -> None:
        self._delivery_handlers.append(fn)

    # -- routing (same static tables as legacy) ------------------------------
    def next_hop(self, dst: NodeId) -> Optional[NodeId]:
        topo = self.fabric.topology
        if self._table_version != topo.version:
            dist, prev = topo.shortest_paths(self.node_id)
            table: Dict[NodeId, NodeId] = {}
            for node in dist:
                if node == self.node_id:
                    continue
                hop = node
                while prev.get(hop) != self.node_id:
                    hop = prev[hop]
                table[node] = hop
            self._table = table
            self._table_version = topo.version
        return self._table.get(dst)

    # -- capsule origination / forwarding ------------------------------------
    def originate(self, capsule: Capsule) -> bool:
        """Inject a capsule generated at this node."""
        capsule.created_at = self.sim.now
        # The origin must hold the code (the sender application provides
        # it, as in ANTS where senders seed their code group).
        if capsule.code_id not in self.nodeos.cache:
            module = self.registry.get(capsule.code_id)
            if module is None:
                raise ValueError(f"unknown protocol {capsule.code_id}")
            self.nodeos.cache.install(module)
        return self._execute(capsule)

    def forward_capsule(self, capsule: Capsule) -> bool:
        """Forward toward ``capsule.dst`` (handlers call this)."""
        if capsule.dst == self.node_id:
            return True
        hop = self.next_hop(capsule.dst)
        if hop is None:
            self.dropped_no_route += 1
            self.sim.trace.emit("ants.drop.noroute", node=self.node_id,
                                dst=capsule.dst)
            return False
        capsule.prev_hop = self.node_id
        return self.fabric.send(self.node_id, hop, capsule)

    def deliver_local(self, capsule: Capsule,
                      from_node: Optional[NodeId] = None) -> None:
        self.capsules_delivered += 1
        self.sim.trace.emit("ants.deliver", node=self.node_id,
                            capsule=capsule.packet_id)
        for fn in self._delivery_handlers:
            fn(capsule, from_node)

    # -- receive path -------------------------------------------------------
    def receive(self, packet: Datagram, from_node: NodeId) -> None:
        if isinstance(packet, CodeRequest):
            self._serve_code(packet, from_node)
        elif isinstance(packet, CodeReply):
            self._install_code(packet)
        elif isinstance(packet, Capsule):
            self._on_capsule(packet, from_node)
        else:
            # Non-capsule traffic: delivered locally or forwarded
            # transparently (legacy interoperability).
            if packet.dst == self.node_id or packet.is_broadcast:
                self.deliver_local(packet, from_node)
            else:
                hop = self.next_hop(packet.dst)
                if hop is not None:
                    self.fabric.send(self.node_id, hop, packet)

    def _on_capsule(self, capsule: Capsule, from_node: NodeId) -> None:
        module = self.nodeos.lookup_code(capsule.code_id,
                                         capsule.code_version)
        if module is None:
            self._demand_load(capsule, from_node)
            return
        self._execute(capsule, from_node)

    def _execute(self, capsule: Capsule,
                 from_node: Optional[NodeId] = None) -> bool:
        module = self.nodeos.cache.peek(capsule.code_id)
        handler = module.entry if module is not None else None
        if handler is None:
            handler = self.registry.handler(capsule.code_id)
        if handler is None:
            self.dropped_no_code += 1
            return False
        self.capsules_processed += 1
        delay = self.nodeos.execute_capsule(module.size_bytes
                                            if module else 1024)
        # Processing completes after the CPU delay; the handler then
        # decides the capsule's fate (forward / deliver / spawn).
        self.sim.call_in(delay, self._run_handler, handler, capsule,
                         from_node, name="capsule-exec")
        return True

    def _run_handler(self, handler, capsule: Capsule,
                     from_node: Optional[NodeId]) -> None:
        if capsule.dst == self.node_id:
            self.deliver_local(capsule, from_node)
            return
        handler(self, capsule)

    # -- demand-pull code distribution ---------------------------------------
    def _demand_load(self, capsule: Capsule, from_node: NodeId) -> None:
        self._pending[capsule.code_id].append(capsule)
        key = (capsule.code_id, capsule.code_version)
        if key in self._requested:
            return
        source = capsule.prev_hop if capsule.prev_hop is not None else from_node
        if source is None or source == self.node_id:
            self.dropped_no_code += 1
            self._pending[capsule.code_id].remove(capsule)
            return
        self._requested.add(key)
        self.code_fetches += 1
        self.sim.trace.emit("ants.code.request", node=self.node_id,
                            code=capsule.code_id, source=source)
        req = CodeRequest(self.node_id, source, capsule.code_id,
                          capsule.code_version)
        self.fabric.send(self.node_id, source, req)

    def _serve_code(self, request: CodeRequest, from_node: NodeId) -> None:
        module = self.nodeos.cache.peek(request.code_id)
        if module is None or module.version < request.min_version:
            return  # cannot serve; requester will retry via other capsules
        reply = CodeReply(self.node_id, request.requester, module)
        self.fabric.send(self.node_id, request.requester, reply)

    def _install_code(self, reply: CodeReply) -> None:
        module = reply.module
        self.nodeos.cache.install(module)
        self._requested.discard((module.code_id, module.version))
        self.sim.trace.emit("ants.code.install", node=self.node_id,
                            code=module.code_id)
        pending = self._pending.pop(module.code_id, [])
        for capsule in pending:
            self._execute(capsule)

    def __repr__(self) -> str:
        return (f"<AntsNode {self.node_id} "
                f"processed={self.capsules_processed} "
                f"fetches={self.code_fetches}>")


def build_ants_network(sim: Simulator, fabric: NetworkFabric,
                       registry: ProtocolRegistry,
                       **node_kw) -> Dict[NodeId, AntsNode]:
    """Attach an AntsNode to every node of the fabric's topology."""
    return {node: AntsNode(sim, fabric, node, registry, **node_kw)
            for node in fabric.topology.nodes}
