"""Physical network substrate: topology, links, packets, mobility, failures."""

from .fabric import NetworkFabric
from .failures import FailureInjector
from .mobility import MobilityModel, RandomWaypoint, StaticPlacement
from .packet import HEADER_BYTES, Datagram
from .radio import RadioPlane
from .topology import (Link, LinkState, Topology, TopologyError,
                       figure3_topology, grid_topology, line_topology,
                       random_topology, ring_topology, star_topology)

__all__ = [
    "NetworkFabric", "FailureInjector", "MobilityModel", "RandomWaypoint",
    "StaticPlacement", "Datagram", "HEADER_BYTES", "RadioPlane", "Link",
    "LinkState", "Topology", "TopologyError", "figure3_topology",
    "grid_topology", "line_topology", "random_topology", "ring_topology",
    "star_topology",
]
