"""Node mobility models.

The paper's ships are *mobile* active nodes ("active ad-hoc networks");
we simulate the standard random-waypoint model over a rectangular plane,
plus a static placement model for wired scenarios.  Positions are plain
numpy arrays so the radio plane can vectorize range tests.
"""

from __future__ import annotations

from typing import Callable, Dict, Hashable, List, Optional, Tuple

import numpy as np

from ..sim import Simulator

NodeId = Hashable
PositionListener = Callable[[], None]


class MobilityModel:
    """Base: a set of node positions on a 2-D plane, updated over time."""

    def __init__(self, sim: Simulator, area: Tuple[float, float] = (1000.0, 1000.0)):
        self.sim = sim
        self.area = (float(area[0]), float(area[1]))
        self._order: List[NodeId] = []
        self._index: Dict[NodeId, int] = {}
        self._pos = np.zeros((0, 2))
        self._listeners: List[PositionListener] = []

    # -- membership -------------------------------------------------------
    def add_node(self, node: NodeId,
                 position: Optional[Tuple[float, float]] = None) -> None:
        if node in self._index:
            raise ValueError(f"node {node!r} already placed")
        if position is None:
            rng = self.sim.rng.np_stream("mobility.place")
            position = (rng.uniform(0, self.area[0]),
                        rng.uniform(0, self.area[1]))
        self._index[node] = len(self._order)
        self._order.append(node)
        self._pos = np.vstack([self._pos, np.asarray(position, dtype=float)])

    def remove_node(self, node: NodeId) -> None:
        i = self._index.pop(node)
        self._order.pop(i)
        self._pos = np.delete(self._pos, i, axis=0)
        for n, j in self._index.items():
            if j > i:
                self._index[n] = j - 1

    @property
    def nodes(self) -> List[NodeId]:
        return list(self._order)

    # -- positions --------------------------------------------------------
    def position(self, node: NodeId) -> Tuple[float, float]:
        p = self._pos[self._index[node]]
        return (float(p[0]), float(p[1]))

    def positions(self) -> Tuple[List[NodeId], np.ndarray]:
        """(node order, Nx2 position matrix) — the vectorized view."""
        return list(self._order), self._pos.copy()

    def set_position(self, node: NodeId, x: float, y: float) -> None:
        self._pos[self._index[node]] = (x, y)

    def distance(self, a: NodeId, b: NodeId) -> float:
        pa = self._pos[self._index[a]]
        pb = self._pos[self._index[b]]
        return float(np.hypot(*(pa - pb)))

    # -- change notification ----------------------------------------------
    def on_update(self, fn: PositionListener) -> None:
        self._listeners.append(fn)

    def _notify(self) -> None:
        for fn in self._listeners:
            fn()


class StaticPlacement(MobilityModel):
    """Nodes never move (wired scenarios)."""


class RandomWaypoint(MobilityModel):
    """Classic random-waypoint mobility.

    Each node picks a uniform destination, moves toward it at a uniform
    speed from ``[speed_min, speed_max]``, pauses ``pause`` seconds, and
    repeats.  Positions advance in discrete ticks of ``tick`` seconds —
    the radio plane recomputes connectivity after every tick.
    """

    def __init__(self, sim: Simulator,
                 area: Tuple[float, float] = (1000.0, 1000.0),
                 speed_min: float = 1.0, speed_max: float = 10.0,
                 pause: float = 2.0, tick: float = 1.0):
        super().__init__(sim, area)
        if speed_min <= 0 or speed_max < speed_min:
            raise ValueError("need 0 < speed_min <= speed_max")
        if tick <= 0:
            raise ValueError("tick must be positive")
        self.speed_min = float(speed_min)
        self.speed_max = float(speed_max)
        self.pause = float(pause)
        self.tick = float(tick)
        self._targets: Dict[NodeId, np.ndarray] = {}
        self._speeds: Dict[NodeId, float] = {}
        self._pause_until: Dict[NodeId, float] = {}
        self._task = None

    def start(self) -> None:
        """Begin moving nodes (idempotent)."""
        if self._task is None:
            self._task = self.sim.every(self.tick, self._step)

    def stop(self) -> None:
        if self._task is not None:
            self._task.stop()
            self._task = None

    def _pick_target(self, node: NodeId) -> None:
        rng = self.sim.rng.stream("mobility.waypoint")
        self._targets[node] = np.array([rng.uniform(0, self.area[0]),
                                        rng.uniform(0, self.area[1])])
        self._speeds[node] = rng.uniform(self.speed_min, self.speed_max)

    def _step(self) -> None:
        now = self.sim.now
        moved = False
        for node in self._order:
            if self._pause_until.get(node, 0.0) > now:
                continue
            if node not in self._targets:
                self._pick_target(node)
            i = self._index[node]
            pos = self._pos[i]
            target = self._targets[node]
            delta = target - pos
            dist = float(np.hypot(*delta))
            step = self._speeds[node] * self.tick
            if dist <= step:
                self._pos[i] = target
                del self._targets[node]
                self._pause_until[node] = now + self.pause
            else:
                self._pos[i] = pos + delta * (step / dist)
            moved = True
        if moved:
            self._notify()
