"""Wire-level packet envelope.

Everything transmitted over a link — legacy datagrams, ANTS capsules,
Viator shuttles — is (or wraps) a :class:`Datagram`.  The fabric only
cares about ``src``, ``dst``, and ``size_bytes``; substrates attach their
semantics in subclasses or in ``payload``.
"""

from __future__ import annotations

import itertools
from typing import Any, Dict, Hashable, Optional

# fork-inherited id sequence: every shard replays the same
# construction order, so per-process copies advance identically
# (see shard/recovery.py)  # via: ignore[VIA013]
_packet_ids = itertools.count(1)

#: Fixed per-packet header overhead in bytes (IPv4-ish).
HEADER_BYTES = 20


def copy_meta(meta: Dict[str, Any]) -> Dict[str, Any]:
    """Copy a packet ``meta`` dict without aliasing nested mutables.

    A plain ``dict(meta)`` shares nested containers — e.g. the ARQ
    record ``meta["arq"]`` — between a clone and its template, so an
    in-place mutation on one side corrupts the other (an ARQ retransmit
    clone would write into the pristine template).  One level of
    container copying is exactly deep enough: every value the stack
    stores in ``meta`` is either immutable (strings, numbers, the
    ``(trace_id, span_id)`` tuple, the manifest tuple) or a flat
    dict/list/set of immutables.
    """
    return {key: (dict(value) if isinstance(value, dict)
                  else list(value) if isinstance(value, list)
                  else set(value) if isinstance(value, set)
                  else value)
            for key, value in meta.items()}


class Datagram:
    """A transmittable unit.

    Attributes
    ----------
    src, dst:
        Origin and final destination node ids.  ``dst`` may be the
        broadcast sentinel :data:`BROADCAST`.
    size_bytes:
        Total wire size including header.
    ttl:
        Remaining hop budget; the fabric decrements per hop and drops at 0.
    payload:
        Opaque application data (never inspected by the fabric).
    """

    BROADCAST = "*"

    __slots__ = ("packet_id", "src", "dst", "size_bytes", "ttl", "payload",
                 "created_at", "hops", "meta", "flow_id")

    def __init__(self, src: Hashable, dst: Hashable,
                 size_bytes: int = 512, ttl: int = 64,
                 payload: Any = None, created_at: float = 0.0,
                 flow_id: Optional[Hashable] = None):
        if size_bytes < HEADER_BYTES:
            raise ValueError(
                f"size {size_bytes} smaller than header {HEADER_BYTES}")
        if ttl < 1:
            raise ValueError(f"ttl must be >= 1, got {ttl}")
        self.packet_id = next(_packet_ids)
        self.src = src
        self.dst = dst
        self.size_bytes = int(size_bytes)
        self.ttl = int(ttl)
        self.payload = payload
        self.created_at = created_at
        self.hops = 0
        self.flow_id = flow_id if flow_id is not None else self.packet_id
        self.meta: Dict[str, Any] = {}

    @property
    def is_broadcast(self) -> bool:
        return self.dst == self.BROADCAST

    def age(self, now: float) -> float:
        return now - self.created_at

    def clone(self) -> "Datagram":
        """A fresh packet id with copied header fields (for fission)."""
        twin = Datagram(self.src, self.dst, self.size_bytes, self.ttl,
                        self.payload, self.created_at, flow_id=self.flow_id)
        twin.hops = self.hops
        twin.meta = copy_meta(self.meta)
        return twin

    def __repr__(self) -> str:
        return (f"<{type(self).__name__} #{self.packet_id} "
                f"{self.src}->{self.dst} {self.size_bytes}B ttl={self.ttl}>")
