"""Physical topology: nodes, point-to-point links, and path computation.

The topology is the one *real* network of the paper's Figures 3 and 4
("Real (Physical) Network"); everything the Wandering Network does —
virtual outstanding networks, overlays, wandering functions — happens on
top of (and is constrained by) this graph.

Implemented from scratch (no networkx dependency in the substrate): an
adjacency-dict graph with Dijkstra shortest paths weighted by link
latency, honouring link/node up-down state.
"""

from __future__ import annotations

import heapq
from typing import Any, Dict, Hashable, Iterable, List, Optional, Set, Tuple

NodeId = Hashable


class TopologyError(Exception):
    """Raised for structurally invalid topology operations."""


class LinkState:
    UP = "up"
    DOWN = "down"


class Link:
    """An undirected point-to-point link between two nodes.

    Bandwidth is in bytes/second, latency in seconds.  Each direction has
    its own transmission queue (modelled by the fabric's token buckets),
    but capacity figures are symmetric, as in the paper's figures.
    """

    __slots__ = ("a", "b", "latency", "bandwidth", "state", "name",
                 "bytes_carried", "packets_carried", "drops", "meta")

    def __init__(self, a: NodeId, b: NodeId, latency: float = 0.01,
                 bandwidth: float = 1_000_000.0,
                 name: Optional[str] = None):
        if a == b:
            raise TopologyError(f"self-link at {a!r}")
        if latency < 0:
            raise TopologyError(f"negative latency {latency}")
        if bandwidth <= 0:
            raise TopologyError(f"non-positive bandwidth {bandwidth}")
        self.a = a
        self.b = b
        self.latency = float(latency)
        self.bandwidth = float(bandwidth)
        self.state = LinkState.UP
        self.name = name or f"{a}~{b}"
        self.bytes_carried = 0
        self.packets_carried = 0
        self.drops = 0
        self.meta: Dict[str, Any] = {}

    @property
    def up(self) -> bool:
        return self.state == LinkState.UP

    def other(self, node: NodeId) -> NodeId:
        if node == self.a:
            return self.b
        if node == self.b:
            return self.a
        raise TopologyError(f"{node!r} is not an endpoint of {self.name}")

    def endpoints(self) -> Tuple[NodeId, NodeId]:
        return (self.a, self.b)

    def __repr__(self) -> str:
        return (f"<Link {self.name} {self.state} lat={self.latency:.4g}s "
                f"bw={self.bandwidth:.4g}B/s>")


def _key(a: NodeId, b: NodeId) -> Tuple:
    return (a, b) if repr(a) <= repr(b) else (b, a)


class Topology:
    """An undirected multigraph-free graph of nodes and links."""

    def __init__(self):
        self._adj: Dict[NodeId, Dict[NodeId, Link]] = {}
        self._links: Dict[Tuple, Link] = {}
        self._node_up: Dict[NodeId, bool] = {}
        self.version = 0  # bumped on every structural / state change

    # -- construction -----------------------------------------------------
    def add_node(self, node: NodeId) -> None:
        if node not in self._adj:
            self._adj[node] = {}
            self._node_up[node] = True
            self.version += 1

    def add_link(self, a: NodeId, b: NodeId, latency: float = 0.01,
                 bandwidth: float = 1_000_000.0,
                 name: Optional[str] = None) -> Link:
        self.add_node(a)
        self.add_node(b)
        key = _key(a, b)
        if key in self._links:
            raise TopologyError(f"duplicate link {a!r}~{b!r}")
        link = Link(a, b, latency, bandwidth, name=name)
        self._links[key] = link
        self._adj[a][b] = link
        self._adj[b][a] = link
        self.version += 1
        return link

    def remove_link(self, a: NodeId, b: NodeId) -> Link:
        key = _key(a, b)
        link = self._links.pop(key, None)
        if link is None:
            raise TopologyError(f"no link {a!r}~{b!r}")
        del self._adj[a][b]
        del self._adj[b][a]
        self.version += 1
        return link

    def remove_node(self, node: NodeId) -> None:
        if node not in self._adj:
            raise TopologyError(f"no node {node!r}")
        for peer in list(self._adj[node]):
            self.remove_link(node, peer)
        del self._adj[node]
        del self._node_up[node]
        self.version += 1

    # -- state ------------------------------------------------------------
    def set_link_state(self, a: NodeId, b: NodeId, up: bool) -> Link:
        link = self.link(a, b)
        new = LinkState.UP if up else LinkState.DOWN
        if link.state != new:
            link.state = new
            self.version += 1
        return link

    def set_node_state(self, node: NodeId, up: bool) -> None:
        if node not in self._node_up:
            raise TopologyError(f"no node {node!r}")
        if self._node_up[node] != up:
            self._node_up[node] = up
            self.version += 1

    def node_up(self, node: NodeId) -> bool:
        return self._node_up.get(node, False)

    # -- queries ----------------------------------------------------------
    @property
    def nodes(self) -> List[NodeId]:
        return list(self._adj)

    @property
    def links(self) -> List[Link]:
        return list(self._links.values())

    def __contains__(self, node: NodeId) -> bool:
        return node in self._adj

    def has_link(self, a: NodeId, b: NodeId) -> bool:
        return _key(a, b) in self._links

    def link(self, a: NodeId, b: NodeId) -> Link:
        link = self._links.get(_key(a, b))
        if link is None:
            raise TopologyError(f"no link {a!r}~{b!r}")
        return link

    def neighbors(self, node: NodeId, only_up: bool = True) -> List[NodeId]:
        adj = self._adj.get(node)
        if adj is None:
            raise TopologyError(f"no node {node!r}")
        if not only_up:
            return list(adj)
        if not self._node_up.get(node, False):
            return []
        return [peer for peer, link in adj.items()
                if link.up and self._node_up.get(peer, False)]

    def degree(self, node: NodeId, only_up: bool = True) -> int:
        return len(self.neighbors(node, only_up=only_up))

    # -- paths ------------------------------------------------------------
    def shortest_paths(self, src: NodeId,
                       weight: str = "latency") -> Tuple[Dict[NodeId, float],
                                                         Dict[NodeId, NodeId]]:
        """Dijkstra from ``src`` over up links/nodes.

        Returns ``(dist, prev)``; unreachable nodes are absent from both.
        ``weight`` is ``"latency"`` or ``"hops"``.
        """
        if src not in self._adj:
            raise TopologyError(f"no node {src!r}")
        dist: Dict[NodeId, float] = {src: 0.0}
        prev: Dict[NodeId, NodeId] = {}
        if not self._node_up.get(src, False):
            return dist, prev
        counter = 0
        heap: List[Tuple[float, int, NodeId]] = [(0.0, counter, src)]
        visited: Set[NodeId] = set()
        while heap:
            d, _, node = heapq.heappop(heap)
            if node in visited:
                continue
            visited.add(node)
            for peer in self.neighbors(node):
                link = self._adj[node][peer]
                w = link.latency if weight == "latency" else 1.0
                nd = d + w
                if nd < dist.get(peer, float("inf")):
                    dist[peer] = nd
                    prev[peer] = node
                    counter += 1
                    heapq.heappush(heap, (nd, counter, peer))
        return dist, prev

    def path(self, src: NodeId, dst: NodeId,
             weight: str = "latency") -> Optional[List[NodeId]]:
        """Shortest up-path from src to dst, inclusive, or None."""
        if src == dst:
            return [src] if self._node_up.get(src, False) else None
        dist, prev = self.shortest_paths(src, weight=weight)
        if dst not in dist:
            return None
        path = [dst]
        while path[-1] != src:
            path.append(prev[path[-1]])
        path.reverse()
        return path

    def path_latency(self, path: Iterable[NodeId]) -> float:
        nodes = list(path)
        return sum(self.link(a, b).latency
                   for a, b in zip(nodes, nodes[1:]))

    def connected_components(self) -> List[Set[NodeId]]:
        """Components of the up-subgraph (down nodes are singletons)."""
        seen: Set[NodeId] = set()
        comps: List[Set[NodeId]] = []
        for start in self._adj:
            if start in seen:
                continue
            comp = {start}
            seen.add(start)
            frontier = [start]
            while frontier:
                node = frontier.pop()
                for peer in self.neighbors(node):
                    if peer not in comp:
                        comp.add(peer)
                        seen.add(peer)
                        frontier.append(peer)
            comps.append(comp)
        return comps

    def is_connected(self) -> bool:
        comps = self.connected_components()
        return len(comps) == 1

    def copy(self) -> "Topology":
        clone = Topology()
        for node in self._adj:
            clone.add_node(node)
            clone._node_up[node] = self._node_up[node]
        for link in self._links.values():
            new = clone.add_link(link.a, link.b, link.latency,
                                 link.bandwidth, name=link.name)
            new.state = link.state
        return clone

    def __repr__(self) -> str:
        up_links = sum(1 for l in self._links.values() if l.up)
        return (f"<Topology nodes={len(self._adj)} "
                f"links={up_links}/{len(self._links)} v{self.version}>")


# -- generators -----------------------------------------------------------

def line_topology(n: int, latency: float = 0.01,
                  bandwidth: float = 1_000_000.0) -> Topology:
    """N0 - N1 - ... - N(n-1)."""
    topo = Topology()
    for i in range(n):
        topo.add_node(i)
    for i in range(n - 1):
        topo.add_link(i, i + 1, latency, bandwidth)
    return topo


def ring_topology(n: int, latency: float = 0.01,
                  bandwidth: float = 1_000_000.0) -> Topology:
    topo = line_topology(n, latency, bandwidth)
    if n > 2:
        topo.add_link(n - 1, 0, latency, bandwidth)
    return topo


def star_topology(n_leaves: int, latency: float = 0.01,
                  bandwidth: float = 1_000_000.0) -> Topology:
    """Hub node 0 with ``n_leaves`` leaves 1..n."""
    topo = Topology()
    topo.add_node(0)
    for i in range(1, n_leaves + 1):
        topo.add_link(0, i, latency, bandwidth)
    return topo


def grid_topology(rows: int, cols: int, latency: float = 0.01,
                  bandwidth: float = 1_000_000.0) -> Topology:
    """rows x cols mesh; node ids are (r, c) tuples."""
    topo = Topology()
    for r in range(rows):
        for c in range(cols):
            topo.add_node((r, c))
    for r in range(rows):
        for c in range(cols):
            if c + 1 < cols:
                topo.add_link((r, c), (r, c + 1), latency, bandwidth)
            if r + 1 < rows:
                topo.add_link((r, c), (r + 1, c), latency, bandwidth)
    return topo


def figure3_topology() -> Topology:
    """The 6-node, 8-link physical network of the paper's Figures 3 and 4.

    Nodes N1..N6 and links L1..L8 arranged so every link label of the
    figure exists; the exact geometry is not specified in the paper, so we
    use the visually apparent wiring: a ring N1-N2-N3-N5-N6-N4-N1 plus two
    chords N2-N4 (L4) and N3-N4 (L5).
    """
    topo = Topology()
    wiring = [("N1", "N2", "L1"), ("N2", "N3", "L3"), ("N3", "N5", "L6"),
              ("N5", "N6", "L8"), ("N6", "N4", "L7"), ("N4", "N1", "L2"),
              ("N2", "N4", "L4"), ("N3", "N4", "L5")]
    for a, b, label in wiring:
        topo.add_link(a, b, latency=0.01, bandwidth=1_000_000.0, name=label)
    return topo


def random_topology(n: int, avg_degree: float, rng,
                    latency: float = 0.01,
                    bandwidth: float = 1_000_000.0) -> Topology:
    """A connected random graph: spanning tree + extra random edges."""
    if n < 1:
        raise TopologyError("need at least one node")
    topo = Topology()
    topo.add_node(0)
    for i in range(1, n):
        parent = rng.randrange(i)
        topo.add_link(parent, i, latency, bandwidth)
    target_links = max(n - 1, int(round(avg_degree * n / 2.0)))
    attempts = 0
    while len(topo.links) < target_links and attempts < 50 * n:
        attempts += 1
        a = rng.randrange(n)
        b = rng.randrange(n)
        if a != b and not topo.has_link(a, b):
            topo.add_link(a, b, latency, bandwidth)
    return topo
