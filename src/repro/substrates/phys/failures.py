"""Failure injection.

The paper appeared at the *Fault-Tolerant Parallel and Distributed
Systems* workshop and leans on self-healing (footnote 18): "a fault-
tolerant network which adapts automatically to defects in its node
connectivity".  This injector produces those defects: link flaps and node
crashes with exponential inter-arrival and repair times.
"""

from __future__ import annotations

from typing import Hashable, List, Optional, Tuple

from ..sim import Simulator
from .topology import Topology

NodeId = Hashable


class FailureInjector:
    """Schedules random link and node failures (and repairs) on a topology.

    Parameters
    ----------
    link_mtbf / node_mtbf:
        Mean time between failures per link / node (seconds).  ``None``
        disables that failure class.
    link_mttr / node_mttr:
        Mean time to repair.
    """

    def __init__(self, sim: Simulator, topology: Topology,
                 link_mtbf: Optional[float] = 300.0,
                 link_mttr: float = 30.0,
                 node_mtbf: Optional[float] = None,
                 node_mttr: float = 60.0,
                 spare_nodes: Optional[List[NodeId]] = None):
        self.sim = sim
        self.topology = topology
        self.link_mtbf = link_mtbf
        self.link_mttr = float(link_mttr)
        self.node_mtbf = node_mtbf
        self.node_mttr = float(node_mttr)
        # Nodes that must never be failed (e.g. traffic sources/sinks).
        self.spare_nodes = set(spare_nodes or [])
        self.link_failures = 0
        self.node_failures = 0
        self.history: List[Tuple[float, str, object]] = []
        self._running = False
        #: Every scheduled failure/repair event, so :meth:`stop` can
        #: cancel them all — stopping must be quiescent (no failure *or
        #: repair* fires afterwards), which chaos campaigns rely on when
        #: they drain the network for their final accounting.
        self._pending: List[object] = []

    def _exp(self, mean: float, stream: str) -> float:
        return self.sim.rng.stream(stream).expovariate(1.0 / mean)

    def _schedule(self, delay: float, fn, *args, name: str):
        self._pending = [e for e in self._pending if e.pending]
        event = self.sim.call_in(delay, fn, *args, name=name)
        self._pending.append(event)
        return event

    def start(self) -> None:
        if self._running:
            return
        self._running = True
        if self.link_mtbf:
            self._schedule(self._exp(self.link_mtbf, "fail.link"),
                           self._fail_link, name="fail-link")
        if self.node_mtbf:
            self._schedule(self._exp(self.node_mtbf, "fail.node"),
                           self._fail_node, name="fail-node")

    def stop(self) -> None:
        """Stop injecting *and* cancel everything already scheduled.

        Restartable: a later :meth:`start` re-arms the arrival processes.
        """
        self._running = False
        for event in self._pending:
            if event.pending:
                event.cancel()
        self._pending.clear()

    # -- link failures ----------------------------------------------------
    def _fail_link(self) -> None:
        if not self._running:
            return
        up_links = [l for l in self.topology.links if l.up]
        if up_links:
            rng = self.sim.rng.stream("fail.link.pick")
            link = up_links[rng.randrange(len(up_links))]
            self.topology.set_link_state(link.a, link.b, False)
            self.link_failures += 1
            self.history.append((self.sim.now, "link-down", link.name))
            self.sim.trace.emit("failure.link.down", link=link.name,
                                a=link.a, b=link.b)
            self._schedule(self._exp(self.link_mttr, "fail.link.repair"),
                           self._repair_link, link, name="repair-link")
        self._schedule(self._exp(self.link_mtbf, "fail.link"),
                       self._fail_link, name="fail-link")

    def _repair_link(self, link) -> None:
        if not self.topology.has_link(link.a, link.b):
            return  # radio plane removed it meanwhile
        self.topology.set_link_state(link.a, link.b, True)
        self.history.append((self.sim.now, "link-up", link.name))
        self.sim.trace.emit("failure.link.up", link=link.name,
                            a=link.a, b=link.b)

    # -- node failures ----------------------------------------------------
    def _fail_node(self) -> None:
        if not self._running:
            return
        candidates = [n for n in self.topology.nodes
                      if self.topology.node_up(n)
                      and n not in self.spare_nodes]
        if candidates:
            rng = self.sim.rng.stream("fail.node.pick")
            node = candidates[rng.randrange(len(candidates))]
            self.topology.set_node_state(node, False)
            self.node_failures += 1
            self.history.append((self.sim.now, "node-down", node))
            self.sim.trace.emit("failure.node.down", node=node)
            self._schedule(self._exp(self.node_mttr, "fail.node.repair"),
                           self._repair_node, node, name="repair-node")
        self._schedule(self._exp(self.node_mtbf, "fail.node"),
                       self._fail_node, name="fail-node")

    def _repair_node(self, node: NodeId) -> None:
        if node in self.topology.nodes:
            self.topology.set_node_state(node, True)
            self.history.append((self.sim.now, "node-up", node))
            self.sim.trace.emit("failure.node.up", node=node)

    def fail_link_now(self, a: NodeId, b: NodeId,
                      repair_after: Optional[float] = None) -> None:
        """Deterministic, scripted failure (used by tests and benches)."""
        self.topology.set_link_state(a, b, False)
        self.link_failures += 1
        self.history.append((self.sim.now, "link-down",
                             self.topology.link(a, b).name))
        self.sim.trace.emit("failure.link.down",
                            link=self.topology.link(a, b).name, a=a, b=b)
        if repair_after is not None:
            self._schedule(repair_after, self._repair_link,
                           self.topology.link(a, b), name="repair-link")

    def fail_node_now(self, node: NodeId,
                      repair_after: Optional[float] = None) -> None:
        self.topology.set_node_state(node, False)
        self.node_failures += 1
        self.history.append((self.sim.now, "node-down", node))
        self.sim.trace.emit("failure.node.down", node=node)
        if repair_after is not None:
            self._schedule(repair_after, self._repair_node, node,
                           name="repair-node")
