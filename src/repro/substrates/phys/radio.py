"""Radio plane: range-based connectivity for mobile (ad-hoc) scenarios.

Whenever the mobility model reports movement, the plane recomputes which
node pairs are within ``radio_range`` (vectorized pairwise distances) and
adds/removes topology links accordingly.  Link churn events are traced as
``radio.link.up`` / ``radio.link.down`` — the adaptive routing protocol
and the self-healing layer key off exactly these events.
"""

from __future__ import annotations

from typing import Hashable, Set, Tuple

import numpy as np

from ..sim import Simulator
from .mobility import MobilityModel
from .topology import Topology

NodeId = Hashable


class RadioPlane:
    """Maintains the topology as the range graph of a mobility model."""

    def __init__(self, sim: Simulator, topology: Topology,
                 mobility: MobilityModel, radio_range: float = 250.0,
                 latency: float = 0.005, bandwidth: float = 1_000_000.0):
        if radio_range <= 0:
            raise ValueError(f"radio_range must be positive: {radio_range}")
        self.sim = sim
        self.topology = topology
        self.mobility = mobility
        self.radio_range = float(radio_range)
        self.latency = float(latency)
        self.bandwidth = float(bandwidth)
        self.link_up_events = 0
        self.link_down_events = 0
        mobility.on_update(self.recompute)

    def _pairs_in_range(self) -> Set[Tuple[NodeId, NodeId]]:
        order, pos = self.mobility.positions()
        n = len(order)
        if n < 2:
            return set()
        diff = pos[:, None, :] - pos[None, :, :]
        dist = np.hypot(diff[..., 0], diff[..., 1])
        ii, jj = np.where(np.triu(dist <= self.radio_range, k=1))
        return {(order[i], order[j]) for i, j in zip(ii.tolist(), jj.tolist())}

    def recompute(self) -> None:
        """Synchronize topology links with current node positions."""
        desired = self._pairs_in_range()
        existing = {tuple(sorted((l.a, l.b), key=repr))
                    for l in self.topology.links}
        desired_norm = {tuple(sorted(p, key=repr)) for p in desired}
        for a, b in desired_norm - existing:
            self.topology.add_link(a, b, self.latency, self.bandwidth)
            self.link_up_events += 1
            self.sim.trace.emit("radio.link.up", a=a, b=b)
        for a, b in existing - desired_norm:
            self.topology.remove_link(a, b)
            self.link_down_events += 1
            self.sim.trace.emit("radio.link.down", a=a, b=b)

    def __repr__(self) -> str:
        return (f"<RadioPlane range={self.radio_range} "
                f"ups={self.link_up_events} downs={self.link_down_events}>")
