"""Network fabric: binds a topology to a simulator and delivers packets.

The fabric models per-link, per-direction FIFO transmission (token
bucket), propagation latency, TTL, and loss on down links.  Hosts attach
with :meth:`NetworkFabric.attach` and must expose::

    host.receive(packet, from_node)   # called at delivery time

Delivery of a packet on a link that goes down mid-flight is dropped —
the paper's ad-hoc scenarios depend on this loss mode.
"""

from __future__ import annotations

from sys import getrefcount as _refcount
from typing import Dict, Hashable, Optional, Protocol, Tuple

from ...obs import TRACE_META_KEY
from ...perf import pool as _pool
from ...perf.switches import switches as _opt
from ..sim import Simulator, TokenBucket
from .packet import Datagram
from .topology import Link, Topology, TopologyError

NodeId = Hashable


class Host(Protocol):
    def receive(self, packet: Datagram, from_node: NodeId) -> None: ...


class NetworkFabric:
    """Delivers datagrams between hosts attached to topology nodes."""

    def __init__(self, sim: Simulator, topology: Topology,
                 loss_rate: float = 0.0):
        if not (0.0 <= loss_rate < 1.0):
            raise ValueError(f"loss_rate out of range: {loss_rate}")
        self.sim = sim
        self.topology = topology
        self.loss_rate = float(loss_rate)
        self._hosts: Dict[NodeId, Host] = {}
        self._buckets: Dict[Tuple, TokenBucket] = {}
        #: Optional per-link circuit breakers (a
        #: :class:`repro.resilience.LinkBreakerRegistry` installs itself
        #: here); ``None`` keeps the legacy fire-and-forget behavior.
        self.breakers = None
        self.packets_sent = 0
        self.packets_delivered = 0
        self.packets_dropped = 0
        self.bytes_delivered = 0

    # -- attachment -------------------------------------------------------
    def attach(self, node: NodeId, host: Host) -> None:
        if node not in self.topology:
            raise TopologyError(f"no node {node!r} in topology")
        self._hosts[node] = host

    def detach(self, node: NodeId) -> None:
        self._hosts.pop(node, None)

    def host(self, node: NodeId) -> Optional[Host]:
        return self._hosts.get(node)

    # -- transmission -----------------------------------------------------
    def _bucket(self, link: Link, direction: NodeId) -> TokenBucket:
        key = (link.name, direction)
        bucket = self._buckets.get(key)
        if bucket is None:
            # One MTU of burst keeps short packets latency-bound rather
            # than rate-bound, like a real line card.
            bucket = TokenBucket(self.sim, rate=link.bandwidth,
                                 burst=1500.0, name=f"{link.name}:{direction}")
            self._buckets[key] = bucket
        return bucket

    def send(self, from_node: NodeId, to_node: NodeId,
             packet: Datagram) -> bool:
        """Transmit one hop.  Returns False if dropped at send time.

        Drops happen when: the link does not exist or is down, either
        endpoint is down, the TTL is exhausted, or random loss strikes.
        """
        self.packets_sent += 1
        if self.sim.obs.on:
            self.sim.obs.fabric_packets.inc(event="send", reason="")
        if not self.topology.has_link(from_node, to_node):
            return self._drop(packet, from_node, to_node, "no-link")
        if self.breakers is not None \
                and not self.breakers.admit(from_node, to_node):
            # Tripped breaker: fail fast, no bucket wait, no in-flight.
            return self._drop(packet, from_node, to_node, "breaker-open")
        link = self.topology.link(from_node, to_node)
        if not link.up:
            return self._drop(packet, from_node, to_node, "link-down")
        if not (self.topology.node_up(from_node)
                and self.topology.node_up(to_node)):
            return self._drop(packet, from_node, to_node, "node-down")
        if packet.ttl <= 0:
            return self._drop(packet, from_node, to_node, "ttl")
        if self.loss_rate > 0.0:
            rng = self.sim.rng.stream("fabric.loss")
            lost = rng.random() < self.loss_rate
            # FEC-protected packets (protocol boosters) survive a single
            # loss event: they only die if a second draw also strikes.
            if lost and packet.meta.get("fec"):
                lost = rng.random() < self.loss_rate
            if lost:
                link.drops += 1
                return self._drop(packet, from_node, to_node, "loss")

        queue_wait = self._bucket(link, from_node).consume(packet.size_bytes)
        serialization = packet.size_bytes / link.bandwidth
        delay = queue_wait + serialization + link.latency
        self._schedule_delivery(link, from_node, to_node, packet, delay)
        return True

    def _schedule_delivery(self, link: Link, from_node: NodeId,
                           to_node: NodeId, packet: Datagram,
                           delay: float) -> None:
        """Enqueue the in-flight leg.  The shard fabric overrides this
        to divert packets bound for ships another shard owns."""
        self.sim.call_in(delay, self._deliver, link, from_node, to_node,
                         packet, name="deliver")

    def _deliver(self, link: Link, from_node: NodeId, to_node: NodeId,
                 packet: Datagram) -> None:
        # Link may have flapped while the packet was in flight.
        if not link.up or not self.topology.node_up(to_node):
            self._drop(packet, from_node, to_node, "in-flight")
            return
        host = self._hosts.get(to_node)
        if host is None:
            self._drop(packet, from_node, to_node, "no-host")
            return
        packet.ttl -= 1
        packet.hops += 1
        link.bytes_carried += packet.size_bytes
        link.packets_carried += 1
        self.packets_delivered += 1
        self.bytes_delivered += packet.size_bytes
        if self.breakers is not None:
            self.breakers.record_success(from_node, to_node)
        obs = self.sim.obs
        if obs.on:
            obs.fabric_packets.inc(event="deliver", reason="")
            obs.link_bytes.inc(packet.size_bytes, link=link.name)
            if obs.flight_recorder is not None:
                obs.flight_recorder.note(
                    "delivery", self.sim.now,
                    f"{from_node}->{to_node}", link=link.name,
                    packet=packet.packet_id)
            ctx = packet.meta.get(TRACE_META_KEY)
            if ctx is not None:
                # Chain the journey: each hop re-parents the in-flight
                # context so the causal tree reads hop -> hop -> dock.
                hop = obs.tracer.event(f"hop:{from_node}->{to_node}", ctx,
                                       to_node, self.sim.now,
                                       link=link.name, ttl=packet.ttl)
                packet.meta[TRACE_META_KEY] = hop.context
        self.sim.trace.emit("fabric.deliver", link=link.name,
                            packet=packet.packet_id, to=to_node)
        host.receive(packet, from_node)
        # Delivery terminus: a fully consumed capsule is recycled
        # (``perf.switches.object_pool``).  The refcount proves sole
        # ownership — exactly three references exist for a dead packet
        # here: this frame's local, the scheduling closure's args tuple
        # (alive until the delivery event finishes firing), and the
        # getrefcount argument itself.  Anything retained downstream
        # (forwarded, ledgered, dead-lettered) counts higher and is
        # left alone.  NOTE: _deliver has exactly two callers — the
        # call_in closure in _schedule_delivery and the shard fabric's
        # handoff injector (whose extra frame ref makes the guard skip,
        # conservatively); a new direct caller must re-audit this count.
        if _opt.object_pool:
            free = _pool.RECYCLABLE.get(type(packet))
            if free is not None and _refcount(packet) == 3:
                free.put(packet._scrub())

    def _drop(self, packet: Datagram, from_node: NodeId, to_node: NodeId,
              reason: str) -> bool:
        self.packets_dropped += 1
        if self.breakers is not None:
            self.breakers.record_drop(from_node, to_node, reason)
        obs = self.sim.obs
        if obs.on:
            obs.fabric_packets.inc(event="drop", reason=reason)
            if obs.flight_recorder is not None:
                obs.flight_recorder.note(
                    "drop", self.sim.now, f"{from_node}->{to_node}",
                    reason=reason, packet=packet.packet_id)
            ctx = packet.meta.get(TRACE_META_KEY)
            if ctx is not None:
                obs.tracer.event("drop", ctx, to_node, self.sim.now,
                                 reason=reason)
        self.sim.trace.emit("fabric.drop", reason=reason,
                            packet=packet.packet_id,
                            src=from_node, dst=to_node)
        return False

    def broadcast(self, from_node: NodeId, packet: Datagram) -> int:
        """Send a copy to every up neighbour; returns copies sent."""
        sent = 0
        obs = self.sim.obs
        count_branches = obs.on
        for peer in self.topology.neighbors(from_node):
            copy = packet.clone()
            if self.send(from_node, peer, copy):
                sent += 1
                if count_branches:
                    obs.multicast_branches.inc(node=from_node)
        return sent

    def __repr__(self) -> str:
        return (f"<NetworkFabric hosts={len(self._hosts)} "
                f"delivered={self.packets_delivered} "
                f"dropped={self.packets_dropped}>")
