"""Code modules and the node code cache.

Active networks live and die by code distribution.  A :class:`CodeModule`
is the unit the paper's shuttles carry ("program code ... for processing
packets", driver routines delivered by netbots, bitstreams for the
reconfigurable fabric).  The :class:`CodeCache` is the per-node LRU store
("May accommodate some residential program code", Table 1).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Iterable, List, Optional, Tuple


class CodeKind:
    """What a code module reconfigures when installed."""

    EE_CODE = "ee-code"      # software for an execution environment
    DRIVER = "driver"        # NodeOS-level driver (netbot delivery)
    BITSTREAM = "bitstream"  # hardware fabric configuration
    GENOME = "genome"        # genetic transcoding payload

    ALL = (EE_CODE, DRIVER, BITSTREAM, GENOME)


class CodeModule:
    """An immutable descriptor of transportable code.

    ``entry`` is the simulated behaviour — typically a role-class name or
    a callable — never inspected by the cache itself.
    """

    __slots__ = ("code_id", "name", "version", "size_bytes", "kind",
                 "entry", "requires")

    def __init__(self, code_id: str, name: str = "", version: int = 1,
                 size_bytes: int = 4096, kind: str = CodeKind.EE_CODE,
                 entry: Any = None,
                 requires: Optional[Iterable[str]] = None):
        if kind not in CodeKind.ALL:
            raise ValueError(f"unknown code kind {kind!r}")
        if size_bytes <= 0:
            raise ValueError(f"non-positive code size {size_bytes}")
        if version < 1:
            raise ValueError(f"version must be >= 1, got {version}")
        self.code_id = code_id
        self.name = name or code_id
        self.version = int(version)
        self.size_bytes = int(size_bytes)
        self.kind = kind
        self.entry = entry
        self.requires: Tuple[str, ...] = tuple(requires or ())

    def successor(self, entry: Any = None,
                  size_bytes: Optional[int] = None) -> "CodeModule":
        """A new version of this module (for upgrade experiments)."""
        return CodeModule(self.code_id, self.name, self.version + 1,
                          size_bytes or self.size_bytes, self.kind,
                          entry if entry is not None else self.entry,
                          self.requires)

    def __repr__(self) -> str:
        return (f"<CodeModule {self.code_id} v{self.version} "
                f"{self.kind} {self.size_bytes}B>")


class CodeCache:
    """A byte-budgeted LRU cache of :class:`CodeModule` objects.

    Pinned modules (the node's *modal*, resident functions) are never
    evicted; auxiliary code competes for the remaining budget.
    """

    def __init__(self, capacity_bytes: int = 1 << 20):
        if capacity_bytes <= 0:
            raise ValueError(f"non-positive capacity {capacity_bytes}")
        self.capacity_bytes = int(capacity_bytes)
        self._modules: "OrderedDict[str, CodeModule]" = OrderedDict()
        self._pinned: set = set()
        self.used_bytes = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.installs = 0

    # -- queries ----------------------------------------------------------
    def __contains__(self, code_id: str) -> bool:
        return code_id in self._modules

    def __len__(self) -> int:
        return len(self._modules)

    def lookup(self, code_id: str,
               min_version: int = 1) -> Optional[CodeModule]:
        """LRU-touching lookup; counts hit/miss statistics."""
        mod = self._modules.get(code_id)
        if mod is None or mod.version < min_version:
            self.misses += 1
            return None
        self._modules.move_to_end(code_id)
        self.hits += 1
        return mod

    def peek(self, code_id: str) -> Optional[CodeModule]:
        """Non-touching, non-counting lookup."""
        return self._modules.get(code_id)

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def modules(self) -> List[CodeModule]:
        return list(self._modules.values())

    # -- mutation ---------------------------------------------------------
    def install(self, module: CodeModule, pin: bool = False) -> bool:
        """Install (or upgrade) a module; returns False if it cannot fit.

        An older version of the same ``code_id`` is replaced in place.
        """
        old = self._modules.get(module.code_id)
        freed = old.size_bytes if old is not None else 0
        if module.size_bytes > self.capacity_bytes:
            return False
        needed = module.size_bytes - freed
        if not self._make_room(needed, keep=module.code_id):
            return False
        if old is not None:
            self.used_bytes -= old.size_bytes
            del self._modules[module.code_id]
        self._modules[module.code_id] = module
        self.used_bytes += module.size_bytes
        self.installs += 1
        if pin:
            self._pinned.add(module.code_id)
        return True

    def _make_room(self, needed: int, keep: str) -> bool:
        if needed <= 0:
            return True
        while self.used_bytes + needed > self.capacity_bytes:
            victim = next(
                (cid for cid in self._modules
                 if cid not in self._pinned and cid != keep), None)
            if victim is None:
                return False
            self.used_bytes -= self._modules[victim].size_bytes
            del self._modules[victim]
            self.evictions += 1
        return True

    def pin(self, code_id: str) -> None:
        if code_id not in self._modules:
            raise KeyError(f"cannot pin unknown module {code_id!r}")
        self._pinned.add(code_id)

    def unpin(self, code_id: str) -> None:
        self._pinned.discard(code_id)

    def is_pinned(self, code_id: str) -> bool:
        return code_id in self._pinned

    def evict(self, code_id: str) -> Optional[CodeModule]:
        """Explicit removal (ignores pinning — caller decides policy)."""
        mod = self._modules.pop(code_id, None)
        if mod is not None:
            self.used_bytes -= mod.size_bytes
            self._pinned.discard(code_id)
        return mod

    def missing_dependencies(self, module: CodeModule) -> List[str]:
        return [dep for dep in module.requires if dep not in self._modules]

    def __repr__(self) -> str:
        return (f"<CodeCache {self.used_bytes}/{self.capacity_bytes}B "
                f"modules={len(self._modules)} hit_rate={self.hit_rate:.2f}>")
