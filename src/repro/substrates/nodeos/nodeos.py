"""The node operating system facade.

2G Wandering Networks are "programmable at both execution environment and
node operating system layer" (Section B).  :class:`NodeOS` is that layer:
it owns the code cache, EE registry, security manager, CPU scheduler and
driver table, and is the single authority through which capsules change a
node.  Ships (4G) and ANTS nodes (1G) are both built over it, differing
only in which NodeOS capabilities their generation unlocks.
"""

from __future__ import annotations

from typing import Dict, Hashable, Optional

from ..sim import Simulator
from .codecache import CodeCache, CodeKind, CodeModule
from .ee import EERegistry, ExecutionEnvironment
from .scheduler import CpuScheduler
from .security import Action, Credential, CredentialAuthority, SecurityManager

#: Simulated CPU cost constants (ops).  Chosen so that software-path
#: operations are microseconds and the cost ordering of Figure 2's
#: reconfiguration tiers is realistic; benches sweep them.
COST_FORWARD = 2_000            # plain store-and-forward of one packet
COST_EXECUTE_PER_BYTE = 15      # interpreting carried code
COST_INSTALL_PER_BYTE = 4       # persisting code into the cache
COST_BIND_EE = 50_000           # (re)binding code into an EE
COST_DRIVER_INSTALL = 250_000   # NodeOS driver update (netbot docking)


class NodeOSError(Exception):
    """Raised for invalid NodeOS operations (not policy denials)."""


class NodeOS:
    """Operating system of one active node.

    Parameters
    ----------
    sim, node_id:
        Kernel and the node's topology id.
    authority:
        Trust domain for capsule credentials.
    cpu_ops_per_second, cache_bytes, max_auxiliary_ees:
        Capacity knobs; the generation ladder and benches vary them.
    """

    def __init__(self, sim: Simulator, node_id: Hashable,
                 authority: Optional[CredentialAuthority] = None,
                 cpu_ops_per_second: float = 1e8,
                 cache_bytes: int = 1 << 20,
                 max_auxiliary_ees: int = 8):
        self.sim = sim
        self.node_id = node_id
        self.authority = authority or CredentialAuthority()
        self.security = SecurityManager(self.authority)
        self.cache = CodeCache(cache_bytes)
        self.ees = EERegistry(max_auxiliary_ees)
        self.cpu = CpuScheduler(sim, cpu_ops_per_second,
                                name=f"cpu:{node_id}")
        self.drivers: Dict[str, CodeModule] = {}
        self.boot_time = sim.now
        self.code_requests = 0
        self.code_request_misses = 0
        #: Per-principal cache bytes (resource access control half of
        #: the security-management class): code_id -> principal and the
        #: running per-principal byte totals.
        self._code_owner: Dict[str, str] = {}
        self._principal_bytes: Dict[str, int] = {}

    # -- authorization ----------------------------------------------------
    def authorize(self, cred: Optional[Credential], action: str) -> bool:
        return self.security.authorize(cred, action, now=self.sim.now)

    # -- code management --------------------------------------------------
    def install_code(self, module: CodeModule,
                     cred: Optional[Credential] = None,
                     pin: bool = False, enforce: bool = True) -> float:
        """Install code into the cache; returns the CPU delay (or raises).

        ``enforce=False`` is for the node's own boot-time provisioning.
        """
        if enforce and not self.authorize(cred, Action.INSTALL_CODE):
            raise PermissionError(
                f"install of {module.code_id} denied on {self.node_id}")
        missing = self.cache.missing_dependencies(module)
        if missing:
            raise NodeOSError(
                f"{module.code_id} missing dependencies: {missing}")
        if enforce and cred is not None:
            self._charge_cache_quota(cred.principal, module)
        if not self.cache.install(module, pin=pin):
            raise NodeOSError(
                f"no cache room for {module.code_id} on {self.node_id}")
        delay = self.cpu.execute(
            COST_INSTALL_PER_BYTE * module.size_bytes, "install")
        self.sim.trace.emit("nodeos.code.install", node=self.node_id,
                            code=module.code_id, version=module.version)
        return delay

    def _charge_cache_quota(self, principal: str,
                            module: CodeModule) -> None:
        """Enforce the per-principal cache-byte quota.

        Replacing one's own module re-charges only the delta; exceeding
        the quota raises PermissionError before the cache is touched.
        """
        quota = self.security.quota_for(principal)
        used = self._principal_bytes.get(principal, 0)
        previous = 0
        if self._code_owner.get(module.code_id) == principal:
            old = self.cache.peek(module.code_id)
            previous = old.size_bytes if old is not None else 0
        projected = used - previous + module.size_bytes
        if projected > quota.cache_bytes:
            self.security.denials.append(
                (self.sim.now, principal, "cache-quota"))
            raise PermissionError(
                f"{principal} cache quota exceeded on {self.node_id}: "
                f"{projected} > {quota.cache_bytes} bytes")
        self._principal_bytes[principal] = projected
        self._code_owner[module.code_id] = principal

    def principal_cache_usage(self, principal: str) -> int:
        return self._principal_bytes.get(principal, 0)

    def lookup_code(self, code_id: str,
                    min_version: int = 1) -> Optional[CodeModule]:
        self.code_requests += 1
        mod = self.cache.lookup(code_id, min_version)
        if mod is None:
            self.code_request_misses += 1
        return mod

    def install_driver(self, module: CodeModule,
                       cred: Optional[Credential] = None) -> float:
        """Install a NodeOS-level driver (netbot 'docking time' delivery)."""
        if module.kind != CodeKind.DRIVER:
            raise NodeOSError(f"{module.code_id} is not a driver")
        if not self.authorize(cred, Action.RECONFIGURE):
            raise PermissionError(
                f"driver install denied on {self.node_id}")
        self.drivers[module.code_id] = module
        delay = self.cpu.execute(COST_DRIVER_INSTALL, "driver")
        self.sim.trace.emit("nodeos.driver.install", node=self.node_id,
                            driver=module.code_id)
        return delay

    def has_driver(self, code_id: str) -> bool:
        return code_id in self.drivers

    # -- EE / function management -----------------------------------------
    def provision_function(self, label: str, module: CodeModule,
                           modal: bool = False) -> ExecutionEnvironment:
        """Boot-time binding of a function into a fresh EE (no policy)."""
        self.cache.install(module, pin=modal)
        ee = self.ees.allocate(label, modal=modal)
        ee.bind(module, now=self.sim.now)
        return ee

    def bind_function(self, label: str, code_id: str,
                      cred: Optional[Credential] = None,
                      modal: bool = False) -> float:
        """Bind cached code into an EE (allocating it if needed).

        Returns the CPU delay.  This is the software-reconfiguration path
        of Figure 2 ("configuration / programming").
        """
        if not self.authorize(cred, Action.RECONFIGURE):
            raise PermissionError(f"bind denied on {self.node_id}")
        module = self.cache.lookup(code_id)
        if module is None:
            raise NodeOSError(f"code {code_id} not cached on {self.node_id}")
        ee = self.ees.get(label)
        if ee is None:
            ee = self.ees.allocate(label, modal=modal)
        ee.bind(module, now=self.sim.now)
        delay = self.cpu.execute(COST_BIND_EE, "bind")
        self.sim.trace.emit("nodeos.ee.bind", node=self.node_id,
                            ee=label, code=code_id)
        return delay

    def activate_function(self, label: str) -> None:
        """Make one EE the node's active function (one role at a time)."""
        target = self.ees.get(label)
        if target is None or not target.bound:
            raise NodeOSError(f"no bound EE {label!r} on {self.node_id}")
        current = self.ees.active_ee
        if current is not None and current is not target:
            current.deactivate()
        target.activate()
        self.sim.trace.emit("nodeos.ee.activate", node=self.node_id,
                            ee=label, code=target.module.code_id)

    # -- capsule execution accounting ---------------------------------------
    def execute_capsule(self, code_size_bytes: int,
                        ee: Optional[ExecutionEnvironment] = None,
                        category: str = "capsule") -> float:
        """Account interpretation of carried code; returns CPU delay."""
        delay = self.cpu.execute(
            COST_EXECUTE_PER_BYTE * max(code_size_bytes, 1), category)
        if ee is not None:
            ee.record_invocation(delay)
        return delay

    def forward_cost(self) -> float:
        """CPU delay of plain forwarding (legacy-compatible path)."""
        return self.cpu.execute(COST_FORWARD, "forward")

    # -- introspection (Self-Reference Principle hooks) ---------------------
    def describe(self) -> Dict:
        """The NodeOS part of a ship's self-description."""
        return {
            "node": self.node_id,
            "ees": self.ees.layout(),
            "drivers": sorted(self.drivers),
            "cache_used": self.cache.used_bytes,
            "cache_capacity": self.cache.capacity_bytes,
            "cached_code": sorted(m.code_id for m in self.cache.modules()),
        }

    def __repr__(self) -> str:
        return f"<NodeOS {self.node_id} {self.ees!r} {self.cache!r}>"
