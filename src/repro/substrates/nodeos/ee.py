"""Execution environments (EEs) and the EE registry.

Figure 2 of the paper shows a ship's internal organization as a bank of
execution environments — one "registry" EE per function, with *modal*
(resident, default-service) functions prioritized for access and
*auxiliary* (optional, supplementary-service) ones installed on demand.
The :class:`EERegistry` realizes exactly that layout.
"""

from __future__ import annotations

import itertools
from typing import Any, Dict, List, Optional

from .codecache import CodeModule

# fork-inherited id sequence: every shard replays the same
# construction order, so per-process copies advance identically
# (see shard/recovery.py)  # via: ignore[VIA013]
_ee_ids = itertools.count(1)


class EEState:
    EMPTY = "empty"        # allocated, no code bound
    READY = "ready"        # code bound, idle
    ACTIVE = "active"      # currently the node's operating function
    SUSPENDED = "suspended"


class ExecutionEnvironment:
    """One sandbox capable of running one net function's code."""

    __slots__ = ("ee_id", "label", "modal", "priority", "state", "module",
                 "invocations", "busy_time", "bound_at")

    def __init__(self, label: str, modal: bool = False, priority: int = 0):
        self.ee_id = next(_ee_ids)
        self.label = label
        self.modal = modal
        # Modal functions are "priorized for access": lower number = first.
        self.priority = priority if priority else (0 if modal else 10)
        self.state = EEState.EMPTY
        self.module: Optional[CodeModule] = None
        self.invocations = 0
        self.busy_time = 0.0
        self.bound_at: Optional[float] = None

    def bind(self, module: CodeModule, now: float = 0.0) -> None:
        self.module = module
        self.state = EEState.READY
        self.bound_at = now

    def unbind(self) -> Optional[CodeModule]:
        mod, self.module = self.module, None
        self.state = EEState.EMPTY
        return mod

    @property
    def bound(self) -> bool:
        return self.module is not None

    def activate(self) -> None:
        if not self.bound:
            raise RuntimeError(f"cannot activate empty EE {self.label}")
        self.state = EEState.ACTIVE

    def deactivate(self) -> None:
        if self.state == EEState.ACTIVE:
            self.state = EEState.READY

    def suspend(self) -> None:
        if self.state in (EEState.READY, EEState.ACTIVE):
            self.state = EEState.SUSPENDED

    def resume(self) -> None:
        if self.state == EEState.SUSPENDED:
            self.state = EEState.READY

    def record_invocation(self, duration: float) -> None:
        self.invocations += 1
        self.busy_time += duration

    def __repr__(self) -> str:
        kind = "modal" if self.modal else "aux"
        code = self.module.code_id if self.module else "-"
        return f"<EE {self.label} {kind} {self.state} code={code}>"


class EERegistry:
    """The bank of EEs inside one node, split modal / auxiliary.

    ``max_auxiliary`` caps how many optional EEs a node can host — the
    knob the security quota (``max_ees``) and the hardware generation
    both constrain.
    """

    def __init__(self, max_auxiliary: int = 8):
        if max_auxiliary < 0:
            raise ValueError("max_auxiliary must be >= 0")
        self.max_auxiliary = max_auxiliary
        self._ees: Dict[str, ExecutionEnvironment] = {}

    # -- allocation -------------------------------------------------------
    def allocate(self, label: str, modal: bool = False) -> ExecutionEnvironment:
        if label in self._ees:
            raise ValueError(f"EE label {label!r} already allocated")
        if not modal and self.auxiliary_count >= self.max_auxiliary:
            raise RuntimeError(
                f"auxiliary EE budget exhausted ({self.max_auxiliary})")
        ee = ExecutionEnvironment(label, modal=modal)
        self._ees[label] = ee
        return ee

    def free(self, label: str) -> Optional[ExecutionEnvironment]:
        return self._ees.pop(label, None)

    def get(self, label: str) -> Optional[ExecutionEnvironment]:
        return self._ees.get(label)

    def __contains__(self, label: str) -> bool:
        return label in self._ees

    def __len__(self) -> int:
        return len(self._ees)

    # -- views ------------------------------------------------------------
    @property
    def modal_ees(self) -> List[ExecutionEnvironment]:
        return [ee for ee in self._ees.values() if ee.modal]

    @property
    def auxiliary_ees(self) -> List[ExecutionEnvironment]:
        return [ee for ee in self._ees.values() if not ee.modal]

    @property
    def auxiliary_count(self) -> int:
        return len(self.auxiliary_ees)

    @property
    def active_ee(self) -> Optional[ExecutionEnvironment]:
        for ee in self._ees.values():
            if ee.state == EEState.ACTIVE:
                return ee
        return None

    def in_priority_order(self) -> List[ExecutionEnvironment]:
        """Modal-first access order (Figure 2's prioritization)."""
        return sorted(self._ees.values(),
                      key=lambda ee: (ee.priority, ee.ee_id))

    def find_by_code(self, code_id: str) -> Optional[ExecutionEnvironment]:
        for ee in self.in_priority_order():
            if ee.module is not None and ee.module.code_id == code_id:
                return ee
        return None

    def layout(self) -> Dict[str, Any]:
        """A serializable description (used by genetic transcoding)."""
        return {
            label: {
                "modal": ee.modal,
                "state": ee.state,
                "code": ee.module.code_id if ee.module else None,
                "version": ee.module.version if ee.module else None,
            }
            for label, ee in sorted(self._ees.items())
        }

    def __repr__(self) -> str:
        return (f"<EERegistry modal={len(self.modal_ees)} "
                f"aux={self.auxiliary_count}/{self.max_auxiliary}>")
