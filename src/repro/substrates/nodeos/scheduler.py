"""CPU scheduler / cycle accounting for a node.

Capsule processing, role reconfiguration, transcoding, and resonance
updates all cost simulated CPU work.  The scheduler converts abstract
operation counts into simulated delays and keeps utilization statistics,
serializing work FIFO when the node is saturated (a single logical core —
*parallel roles* in the paper share it, they do not multiply it).
"""

from __future__ import annotations

from typing import Dict

from ...substrates.sim import Simulator


class CpuScheduler:
    """Accounts CPU work in 'ops' against a node's ops/second budget."""

    def __init__(self, sim: Simulator, ops_per_second: float = 1e8,
                 name: str = "cpu"):
        if ops_per_second <= 0:
            raise ValueError(f"non-positive CPU rate {ops_per_second}")
        self.sim = sim
        self.ops_per_second = float(ops_per_second)
        self.name = name
        self._free_at = 0.0          # when the core next goes idle
        self.total_ops = 0.0
        self.busy_time = 0.0
        self.jobs = 0
        self.by_category: Dict[str, float] = {}

    def execute(self, ops: float, category: str = "misc") -> float:
        """Debit ``ops`` of work; returns the completion *delay* from now.

        Work is serialized: if the core is busy until T, a new job starts
        at T.  The returned delay is therefore queue wait + service time.
        """
        if ops < 0:
            raise ValueError(f"negative work {ops}")
        now = self.sim.now
        service = ops / self.ops_per_second
        start = max(now, self._free_at)
        self._free_at = start + service
        self.total_ops += ops
        self.busy_time += service
        self.jobs += 1
        self.by_category[category] = self.by_category.get(category, 0.0) + ops
        return self._free_at - now

    @property
    def backlog(self) -> float:
        """Seconds of queued work ahead of a job submitted now."""
        return max(0.0, self._free_at - self.sim.now)

    def utilization(self, horizon: float) -> float:
        """Busy fraction over ``horizon`` seconds of simulated time."""
        if horizon <= 0:
            return 0.0
        return min(1.0, self.busy_time / horizon)

    def __repr__(self) -> str:
        return (f"<CpuScheduler {self.name} {self.ops_per_second:.3g}ops/s "
                f"jobs={self.jobs} backlog={self.backlog:.4g}s>")
