"""Security manager: capsule authorization and resource access control.

Kulkarni & Minden's *Security Management* protocol class ("capsule
authorization and resource access control") is a first-class function
role in the Viator model (merged with network management, Figure 2).
This module is the NodeOS half: principals, capability policies, and
per-principal resource quotas that every arriving capsule/shuttle is
checked against before execution.
"""

from __future__ import annotations

import hashlib
from typing import Dict, List, Optional, Set, Tuple


class Action:
    """Things a capsule may be authorized to do on a node."""

    EXECUTE = "execute"            # run carried code in an EE
    INSTALL_CODE = "install-code"  # persist code into the cache
    RECONFIGURE = "reconfigure"    # change node role / EE layout
    RECONFIGURE_HW = "reconfigure-hw"  # load bitstreams (3G+)
    SPAWN = "spawn"                # create new capsules (jets)
    READ_STATE = "read-state"      # genetic transcoding / Next-Step reads
    AGGREGATE = "aggregate"        # join node clusters

    ALL = (EXECUTE, INSTALL_CODE, RECONFIGURE, RECONFIGURE_HW, SPAWN,
           READ_STATE, AGGREGATE)


class Credential:
    """A (simulated) signed identity carried by capsules.

    The token is a deterministic MAC of (principal, issuer_secret); a
    forged credential fails verification.  This models authorization
    without pulling in real cryptography.
    """

    __slots__ = ("principal", "token")

    def __init__(self, principal: str, token: str):
        self.principal = principal
        self.token = token

    def __repr__(self) -> str:
        return f"<Credential {self.principal}>"


def _mac(principal: str, secret: str) -> str:
    return hashlib.sha256(f"{principal}|{secret}".encode()).hexdigest()[:16]


class CredentialAuthority:
    """Issues and verifies credentials for a network-wide trust domain."""

    def __init__(self, secret: str = "viator-domain"):
        self._secret = secret

    def issue(self, principal: str) -> Credential:
        return Credential(principal, _mac(principal, self._secret))

    def verify(self, cred: Optional[Credential]) -> bool:
        if cred is None:
            return False
        return cred.token == _mac(cred.principal, self._secret)


class Quota:
    """Per-principal resource budget (bytes of cache, EEs, spawns)."""

    __slots__ = ("cache_bytes", "max_ees", "max_spawns_per_window")

    def __init__(self, cache_bytes: int = 256 * 1024, max_ees: int = 4,
                 max_spawns_per_window: int = 32):
        self.cache_bytes = cache_bytes
        self.max_ees = max_ees
        self.max_spawns_per_window = max_spawns_per_window


class SecurityManager:
    """Policy + quota enforcement point of a NodeOS.

    Policies are (principal, action) pairs; ``"*"`` wildcards either
    side.  Denials are recorded so the management role can report them.
    """

    def __init__(self, authority: CredentialAuthority,
                 default_allow: Optional[Set[str]] = None):
        self.authority = authority
        self._grants: Set[Tuple[str, str]] = set()
        self._revocations: Set[Tuple[str, str]] = set()
        self._quotas: Dict[str, Quota] = {}
        self.default_quota = Quota()
        # A freshly booted node lets verified principals execute and read
        # state; anything stronger needs an explicit grant.
        for action in (default_allow
                       if default_allow is not None
                       else {Action.EXECUTE, Action.READ_STATE}):
            self._grants.add(("*", action))
        self.checks = 0
        self.denials: List[Tuple[float, str, str]] = []
        self._spawn_counts: Dict[str, int] = {}

    # -- policy -----------------------------------------------------------
    def grant(self, principal: str, action: str) -> None:
        if action not in Action.ALL and action != "*":
            raise ValueError(f"unknown action {action!r}")
        self._grants.add((principal, action))
        self._revocations.discard((principal, action))

    def revoke(self, principal: str, action: str) -> None:
        self._revocations.add((principal, action))

    def set_quota(self, principal: str, quota: Quota) -> None:
        self._quotas[principal] = quota

    def quota_for(self, principal: str) -> Quota:
        return self._quotas.get(principal, self.default_quota)

    # -- enforcement ------------------------------------------------------
    def authorize(self, cred: Optional[Credential], action: str,
                  now: float = 0.0) -> bool:
        """True iff the credential verifies and policy allows the action."""
        self.checks += 1
        if not self.authority.verify(cred):
            self.denials.append((now, "<unverified>", action))
            return False
        principal = cred.principal
        if ((principal, action) in self._revocations
                or (principal, "*") in self._revocations):
            self.denials.append((now, principal, action))
            return False
        allowed = ((principal, action) in self._grants
                   or (principal, "*") in self._grants
                   or ("*", action) in self._grants
                   or ("*", "*") in self._grants)
        if not allowed:
            self.denials.append((now, principal, action))
        return allowed

    def would_allow(self, cred: Optional[Credential], action: str) -> bool:
        """Pure policy query: what :meth:`authorize` *would* answer.

        Unlike :meth:`authorize` this records nothing — no check count,
        no denial entry — so static admission prechecks can probe the
        policy without perturbing the audit trail the management role
        reports (and without changing run digests).
        """
        if not self.authority.verify(cred):
            return False
        principal = cred.principal
        if ((principal, action) in self._revocations
                or (principal, "*") in self._revocations):
            return False
        return ((principal, action) in self._grants
                or (principal, "*") in self._grants
                or ("*", action) in self._grants
                or ("*", "*") in self._grants)

    def charge_spawn(self, principal: str) -> bool:
        """Account one capsule spawn against the principal's window quota."""
        used = self._spawn_counts.get(principal, 0)
        if used >= self.quota_for(principal).max_spawns_per_window:
            return False
        self._spawn_counts[principal] = used + 1
        return True

    def reset_spawn_window(self) -> None:
        self._spawn_counts.clear()

    @property
    def denial_count(self) -> int:
        return len(self.denials)

    def __repr__(self) -> str:
        return (f"<SecurityManager grants={len(self._grants)} "
                f"checks={self.checks} denials={self.denial_count}>")
