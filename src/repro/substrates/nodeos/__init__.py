"""Node operating system substrate (the 2G-WN programmability layer)."""

from .codecache import CodeCache, CodeKind, CodeModule
from .ee import EERegistry, EEState, ExecutionEnvironment
from .nodeos import (COST_BIND_EE, COST_DRIVER_INSTALL,
                     COST_EXECUTE_PER_BYTE, COST_FORWARD,
                     COST_INSTALL_PER_BYTE, NodeOS, NodeOSError)
from .scheduler import CpuScheduler
from .security import (Action, Credential, CredentialAuthority, Quota,
                       SecurityManager)

__all__ = [
    "CodeCache", "CodeKind", "CodeModule", "EERegistry", "EEState",
    "ExecutionEnvironment", "NodeOS", "NodeOSError", "CpuScheduler",
    "Action", "Credential", "CredentialAuthority", "Quota",
    "SecurityManager", "COST_BIND_EE", "COST_DRIVER_INSTALL",
    "COST_EXECUTE_PER_BYTE", "COST_FORWARD", "COST_INSTALL_PER_BYTE",
]
